module Rng = Secdb_util.Rng
module Xbytes = Secdb_util.Xbytes

type t = {
  fd : Unix.file_descr;
  session_mac : Wire.session_mac;
  timeout : float;
  max_frame : int;
  mutable next_id : int;
  pending : (int, (string, Wire.err_code * string) result) Hashtbl.t;
  mutable closed : bool;
}

type error =
  | Io of Wire.io_error
  | Conn of Wire.err_code * string
  | Remote of Wire.err_code * string
  | Protocol of string

let error_to_string = function
  | Io e -> "io: " ^ Wire.io_error_to_string e
  | Conn (c, m) -> Printf.sprintf "connection error [%s]: %s" (Wire.err_code_to_string c) m
  | Remote (c, m) -> Printf.sprintf "server error [%s]: %s" (Wire.err_code_to_string c) m
  | Protocol m -> "protocol violation: " ^ m

let default_seed () =
  Int64.logxor
    (Int64.of_float (Unix.gettimeofday () *. 1e6))
    (Int64.of_int ((Unix.getpid () * 2654435761) + 1))

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(* One handshake attempt over a freshly connected socket.  Failures are
   classified so the dial loop can tell a server that is merely slow or
   restarting ([`Io]: timeout, short read, peer hung up mid-drain — retry
   with a fresh socket) from one that answered and said no ([`Refused]:
   wrong credential, protocol mismatch — retrying cannot help). *)
let authenticate ~auth_key ~timeout ~max_frame ~rng fd =
  let close_fd () = try Unix.close fd with Unix.Unix_error _ -> () in
  let fail msg =
    close_fd ();
    Error (`Refused msg)
  in
  let io_fail stage e =
    close_fd ();
    let msg = stage ^ ": " ^ Wire.io_error_to_string e in
    match e with
    | `Eof | `Timeout | `Stopped -> Error (`Io msg)
    | `Too_large _ | `Bad_frame _ -> Error (`Refused msg)
  in
  let client_nonce = Rng.bytes rng 16 in
  match
    Wire.write_frame ~timeout fd (Wire.Hello { version = Wire.protocol_version; nonce = client_nonce })
  with
  | Error e -> io_fail "hello" e
  | Ok () -> (
      match Wire.read_frame ~max_frame ~timeout fd with
      | Error e -> io_fail "challenge" e
      | Ok (Wire.Conn_error { code; message }) ->
          fail (Printf.sprintf "rejected [%s]: %s" (Wire.err_code_to_string code) message)
      | Ok (Wire.Challenge { version; nonce = server_nonce }) -> (
          if version <> Wire.protocol_version then
            fail (Printf.sprintf "server speaks protocol version %d" version)
          else
            let mac = Wire.handshake_mac ~auth_key ~client_nonce ~server_nonce in
            match Wire.write_frame ~timeout fd (Wire.Auth mac) with
            | Error e -> io_fail "auth" e
            | Ok () -> (
                match Wire.read_frame ~max_frame ~timeout fd with
                | Error e -> io_fail "auth reply" e
                | Ok (Wire.Conn_error { code; message }) ->
                    fail
                      (Printf.sprintf "authentication refused [%s]: %s"
                         (Wire.err_code_to_string code) message)
                | Ok (Wire.Auth_ok server_mac) ->
                    let expected = Wire.accept_mac ~auth_key ~client_nonce ~server_nonce in
                    if Xbytes.constant_time_equal server_mac expected then
                      Ok (Wire.session_key ~auth_key ~client_nonce ~server_nonce)
                    else fail "server failed mutual authentication"
                | Ok _ -> fail "expected auth-ok"))
      | Ok _ -> fail "expected a challenge")

let connect ?(attempts = 5) ?(backoff = 0.05) ?(timeout = 30.) ?(max_frame = Wire.default_max_frame)
    ?seed ~auth_key addr =
  let seed = match seed with Some s -> s | None -> default_seed () in
  let rng = Rng.create ~seed () in
  let sockaddr = Wire.sockaddr_of_addr addr in
  let domain = match addr with Wire.Unix_sock _ -> Unix.PF_UNIX | Wire.Tcp _ -> Unix.PF_INET in
  (* One attempt = dial + handshake.  A transient failure anywhere in
     that pair — connection refused, or an I/O hiccup mid-handshake while
     the server restarts or drains — retries on a fresh socket with the
     same backoff; an explicit refusal (bad credential, protocol
     mismatch) fails immediately, no matter how many attempts remain. *)
  let attempt () =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd sockaddr with
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error
          (`Io (Printf.sprintf "connect %s: %s" (Wire.addr_to_string addr) (Unix.error_message e)))
    | () -> (
        match authenticate ~auth_key ~timeout ~max_frame ~rng fd with
        | Error _ as e -> e
        | Ok session_key -> Ok (fd, session_key))
  in
  let rec go n delay =
    match attempt () with
    | Ok (fd, session_key) ->
        (* hoisted for the session: every request reuses the keyed MAC *)
        let session_mac = Wire.session_mac ~session_key in
        Ok { fd; session_mac; timeout; max_frame; next_id = 1; pending = Hashtbl.create 8; closed = false }
    | Error (`Refused msg) -> Error msg
    | Error (`Io msg) ->
        if n <= 1 then Error msg
        else begin
          (try Thread.delay delay with _ -> ());
          go (n - 1) (delay *. 2.)
        end
  in
  go (max 1 attempts) backoff

let send_request t ~corrupt req =
  if t.closed then Error (Protocol "connection is closed")
  else begin
    let id = t.next_id in
    t.next_id <- t.next_id + 1;
    let body = Wire.encode_req req in
    let mac = Wire.request_mac_keyed t.session_mac ~id ~body in
    let mac =
      if not corrupt then mac
      else begin
        let b = Bytes.of_string mac in
        Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x01));
        Bytes.to_string b
      end
    in
    match Wire.write_frame ~timeout:t.timeout t.fd (Wire.Request { id; body; mac }) with
    | Ok () -> Ok id
    | Error e ->
        close t;
        Error (Io e)
  end

let post t req = send_request t ~corrupt:false req
let post_corrupted t req = send_request t ~corrupt:true req

let decode_result wanted = function
  | Error (code, msg) -> Error (Remote (code, msg))
  | Ok body -> (
      match Wire.decode_resp body with
      | Ok resp -> Ok resp
      | Error e -> Error (Protocol (Printf.sprintf "response %d: %s" wanted e)))

let await t wanted =
  match Hashtbl.find_opt t.pending wanted with
  | Some result ->
      Hashtbl.remove t.pending wanted;
      decode_result wanted result
  | None ->
      if t.closed then Error (Protocol "connection is closed")
      else
        let rec read () =
          match Wire.read_frame ~max_frame:t.max_frame ~timeout:t.timeout t.fd with
          | Error e ->
              close t;
              Error (Io e)
          | Ok (Wire.Response { id; result }) ->
              if id = wanted then decode_result wanted result
              else begin
                Hashtbl.replace t.pending id result;
                read ()
              end
          | Ok (Wire.Conn_error { code; message }) ->
              close t;
              Error (Conn (code, message))
          | Ok _ ->
              close t;
              Error (Protocol "unexpected frame while awaiting a response")
        in
        read ()

let call t req =
  match post t req with Error _ as e -> e | Ok id -> await t id

let pipeline ?(window = 32) t reqs =
  (* Posting an unbounded burst before reading anything deadlocks once the
     responses overflow the receive buffer: the server's writer blocks on
     us, its reader stops draining our posts, and both sides sit in their
     timeouts.  Keep at most [window] requests outstanding — await the
     oldest before posting past the window — so responses drain while the
     burst is still being written. *)
  let window = max 1 window in
  let results = Queue.create () in
  let inflight = Queue.create () in
  let finish_oldest () =
    Queue.push
      (match Queue.pop inflight with Error _ as e -> e | Ok id -> await t id)
      results
  in
  List.iter
    (fun req ->
      if Queue.length inflight >= window then finish_oldest ();
      Queue.push (post t req) inflight)
    reqs;
  while not (Queue.is_empty inflight) do
    finish_oldest ()
  done;
  List.of_seq (Queue.to_seq results)

let ping t =
  let t0 = Unix.gettimeofday () in
  match call t (Wire.Ping "ping") with
  | Ok (Wire.Pong "ping") -> Ok (Unix.gettimeofday () -. t0)
  | Ok _ -> Error (Protocol "pong payload mismatch")
  | Error _ as e -> e

(** Concurrent secdb server: dispatches authenticated, pipelined
    {!Wire.req} operations against one {!Secdb.Encdb.t}.

    One lightweight thread serves each connection (a reader that
    verifies, dispatches and produces responses, and a writer draining a
    bounded response queue — the queue bound is the per-connection
    in-flight cap, so a client that pipelines faster than the server can
    answer is throttled through TCP backpressure rather than unbounded
    buffering).

    The data plane is sharded: every table lives in exactly one shard
    ({!Secdb_db.Shard.key_shard} over its name), each shard owns a full
    {!Secdb.Encdb.t} and one executor domain, and a request routes to the
    shard of the table it names.  Requests on different shards run in
    true parallel; one shard's requests stay serialised, which is what
    keeps pipelined results byte-identical to the in-process API.  Point
    SELECTs are additionally served lock-free from each shard's published
    read snapshot ({!Secdb_sql.Snapshot}), so they never block behind a
    writer — a connection still always reads its own writes, because the
    snapshot is republished before a mutation's response is sent.

    The server is configured with the {e derived} session-auth credential
    ({!Wire.auth_key_of_master}), never the master key itself.

    Every request is observed through {!Secdb_obs}: [net.rpc{op=...}]
    counters, [net.rpc_latency{op=...}] histograms, [net.bytes_in] /
    [net.bytes_out], a [net.connections] gauge and [net.auth_failures] —
    all visible to clients through the [Stats] RPC. *)

type config = {
  auth_key : string;  (** 32-byte credential from {!Wire.auth_key_of_master} *)
  max_frame : int;  (** largest accepted frame ({!Wire.default_max_frame}) *)
  max_inflight : int;  (** per-connection response-queue bound (default 64) *)
  read_timeout : float;  (** seconds a connection may sit idle (default 30) *)
  write_timeout : float;  (** seconds a single frame write may take (default 30) *)
  shards : int;  (** data-plane shard count (default {!Secdb_util.Pool.recommended}) *)
}

val config :
  ?max_frame:int ->
  ?max_inflight:int ->
  ?read_timeout:float ->
  ?write_timeout:float ->
  ?shards:int ->
  auth_key:string ->
  unit ->
  config

type t

(** What this node is in a replication topology (default [Standalone]).

    A [Primary] appends every observed mutation to the given oplog writer
    inside the executor job that performed it — before the response is
    signalled, so an acked write is a logged write, and per-shard apply
    order equals log order.  It answers [Repl_pull] with sealed records
    (only fsynced ones ever ship).  If an append fails the log stops
    growing and pulls report the failure; local serving continues.

    A [Replica] rejects every mutating request with a structured
    [read-only] error — its only write path is {!apply_op}, fed by the
    pull loop ({!Repl.run_replica}) — and serves reads from the same
    snapshot machinery as any node.  [initial_applied] seats the op count
    after a boot-time replay of the local log copy.

    Every role answers [Repl_root] with the Merkle root over its
    per-shard digests, taken under all shard locks so the root and the
    count describe one consistent state. *)
type role =
  | Standalone
  | Primary of Secdb.Oplog.writer
  | Replica of { initial_applied : int }

val create :
  ?seed:int64 ->
  ?role:role ->
  config:config ->
  db:(int -> Secdb.Encdb.t) ->
  Wire.addr ->
  (t, string) result
(** Bind and listen (Unix socket or TCP), then build one database per
    shard: [db i] must return shard [i]'s {!Secdb.Encdb.t} — give shards
    disjoint [first_table_id] / [first_index_id] ranges so derived keys
    never collide.  A stale Unix-socket path is replaced.  [seed] fixes
    the challenge-nonce stream (tests); by default it is drawn from the
    clock and pid.

    For byte-identical replication the primary, every replica and any
    offline restore must build their shard databases with the same seeds
    and the same shard count — nonce streams and table ids are derived
    from both. *)

val apply_op : t -> Secdb.Oplog.op -> (unit, string) result
(** Apply one (already verified) replicated op on the executor of the
    shard it routes to, republishing that shard's read snapshot — the
    replica's write path. *)

val addr : t -> Wire.addr

val run : t -> unit
(** Serve in the calling thread until {!request_stop} (e.g. from a SIGTERM
    handler), then drain: stop accepting, let every connection finish its
    current request, join the workers, close and unlink the socket. *)

val start : t -> unit
(** {!run} in a background thread (for tests and in-process benchmarks). *)

val request_stop : t -> unit
(** Flip the shutdown flag; safe to call from a signal handler. *)

val stop : t -> unit
(** {!request_stop}, then wait until the drain completes.  Idempotent. *)

val dispatch : Secdb.Encdb.t -> Wire.req -> (Wire.resp, Wire.err_code * string) result
(** The request executor itself, exposed so tests and benchmarks can
    compare a networked result against the same call made in process. *)

(** Concurrent secdb server: dispatches authenticated, pipelined
    {!Wire.req} operations against one {!Secdb.Encdb.t}.

    One lightweight thread serves each connection (a reader that
    verifies, dispatches and produces responses, and a writer draining a
    bounded response queue — the queue bound is the per-connection
    in-flight cap, so a client that pipelines faster than the server can
    answer is throttled through TCP backpressure rather than unbounded
    buffering).  Database dispatch is serialised by a mutex: the
    underlying {!Secdb.Encdb.t} is not thread-safe, and serialisation is
    what makes pipelined results byte-identical to the in-process API.

    The server is configured with the {e derived} session-auth credential
    ({!Wire.auth_key_of_master}), never the master key itself.

    Every request is observed through {!Secdb_obs}: [net.rpc{op=...}]
    counters, [net.rpc_latency{op=...}] histograms, [net.bytes_in] /
    [net.bytes_out], a [net.connections] gauge and [net.auth_failures] —
    all visible to clients through the [Stats] RPC. *)

type config = {
  auth_key : string;  (** 32-byte credential from {!Wire.auth_key_of_master} *)
  max_frame : int;  (** largest accepted frame ({!Wire.default_max_frame}) *)
  max_inflight : int;  (** per-connection response-queue bound (default 64) *)
  read_timeout : float;  (** seconds a connection may sit idle (default 30) *)
  write_timeout : float;  (** seconds a single frame write may take (default 30) *)
}

val config :
  ?max_frame:int ->
  ?max_inflight:int ->
  ?read_timeout:float ->
  ?write_timeout:float ->
  auth_key:string ->
  unit ->
  config

type t

val create : ?seed:int64 -> config:config -> db:Secdb.Encdb.t -> Wire.addr -> (t, string) result
(** Bind and listen (Unix socket or TCP).  A stale Unix-socket path is
    replaced.  [seed] fixes the challenge-nonce stream (tests); by
    default it is drawn from the clock and pid. *)

val addr : t -> Wire.addr

val run : t -> unit
(** Serve in the calling thread until {!request_stop} (e.g. from a SIGTERM
    handler), then drain: stop accepting, let every connection finish its
    current request, join the workers, close and unlink the socket. *)

val start : t -> unit
(** {!run} in a background thread (for tests and in-process benchmarks). *)

val request_stop : t -> unit
(** Flip the shutdown flag; safe to call from a signal handler. *)

val stop : t -> unit
(** {!request_stop}, then wait until the drain completes.  Idempotent. *)

val dispatch : Secdb.Encdb.t -> Wire.req -> (Wire.resp, Wire.err_code * string) result
(** The request executor itself, exposed so tests and benchmarks can
    compare a networked result against the same call made in process. *)

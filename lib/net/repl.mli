(** Log shipping and point-in-time recovery over the authenticated net
    layer.

    The source scheme's central discipline — bind every artifact to its
    address and sequence so relocation, replay and splicing fail
    authentication — is exactly what a replication stream needs, so
    replication here is nothing more than shipping the {!Secdb.Oplog}'s
    sealed records (sequence number as AEAD associated data) over the
    HMAC-authenticated RPC channel and re-verifying them at the far end.

    The protocol is pull-based and stateless on the primary: a replica
    sends [Repl_pull { ack; max }] where [ack] is the size of its own
    durable prefix; the primary answers with sealed records starting at
    [ack] — only ones already covered by an fsync, so a primary crash can
    never leave a replica holding history the primary itself lost.  The
    replica verifies each record at its position, stores it verbatim
    (its log is byte-identical to the primary's prefix), applies it, and
    lets the next pull carry the new ack.  Crash either side, reconnect,
    and the ack re-synchronises the stream; no per-replica state, no
    session to lose.

    Attestation: [Repl_root] returns the Merkle root over the node's full
    database state ({!combined_root} of the per-shard {!Secdb.Encdb.digest}s)
    plus the op count it reflects.  With equal seeds and shard counts,
    primary and replica state is byte-identical at equal counts, so one
    constant-size comparison proves a replica serves exactly the
    primary's authenticated prefix. *)

val log_aead : master:string -> Secdb_aead.Aead.t
(** The oplog AEAD, derived from the master secret under
    ["secdb/oplog/key/v1"] — primary, replicas and offline restore all
    derive the same key, and nothing but the master travels out of band. *)

val log_nonce : rng:Secdb_util.Rng.t -> Secdb_aead.Nonce.t
(** A per-boot nonce stream for a (possibly resumed) log writer: a random
    8-byte boot prefix followed by an 8-byte counter, so no two boots —
    and no two appends within a boot — repeat a nonce under the log key. *)

val op_of_change : Secdb.Encdb.change -> Secdb.Oplog.op
(** Each observed mutation maps to exactly one oplog record; a replica
    applying the records in order re-derives the same change stream. *)

val route : shards:int -> Secdb.Oplog.op -> int
(** The shard an op belongs to ({!Secdb_db.Shard.key_index} over its
    table) — identical routing on primary, replica and offline restore. *)

val apply_routed : Secdb.Encdb.t array -> Secdb.Oplog.op -> (unit, string) result
(** Apply one op to the shard it routes to. *)

val combined_root : string list -> string
(** Merkle root over per-shard digests, in slot order. *)

val root_of_dbs : Secdb.Encdb.t array -> string
(** {!combined_root} of every shard's {!Secdb.Encdb.digest}. *)

val restore :
  ?vfs:Secdb_storage.Vfs.t ->
  path:string ->
  aead:Secdb_aead.Aead.t ->
  shards:int ->
  mkdb:(int -> Secdb.Encdb.t) ->
  ?to_op:int ->
  unit ->
  (Secdb.Encdb.t array * int, string) result
(** Point-in-time recovery: authenticate the longest valid prefix of the
    log at [path] ({!Secdb.Oplog.recover}), then rebuild fresh shard
    databases by applying the first [to_op] operations (default: the
    whole prefix).  Returns the shards and the count applied.  Fails if
    [to_op] exceeds the authenticated prefix — a torn or forged tail can
    bound, but never corrupt, what is restorable. *)

type progress = { got : int; primary_durable : int }

val pull_once :
  Client.t ->
  aead:Secdb_aead.Aead.t ->
  ?writer:Secdb.Oplog.writer ->
  ack:int ->
  apply:(Secdb.Oplog.op -> (unit, string) result) ->
  ?max:int ->
  unit ->
  (progress, [ `Conn of string | `Fatal of string ]) result
(** One pull round: request up to [max] records after [ack], verify each
    at its sequence position, store it via [writer] (when keeping a local
    log copy) and apply it.  [`Conn] means the transport died — reconnect
    and retry; [`Fatal] means verification or apply failed — the replica
    must stop rather than serve unauthenticated state.  The local log is
    fsynced before returning, so the next ack only ever claims durable
    records. *)

val run_replica :
  connect:(unit -> (Client.t, string) result) ->
  aead:Secdb_aead.Aead.t ->
  ?writer:Secdb.Oplog.writer ->
  ack:(unit -> int) ->
  apply:(Secdb.Oplog.op -> (unit, string) result) ->
  ?max:int ->
  ?poll:float ->
  stop:(unit -> bool) ->
  unit ->
  (unit, string) result
(** The replica's catch-up loop: connect, pull until caught up, poll
    every [poll] seconds (default 0.05), reconnect with capped backoff
    whenever the primary goes away, and keep going until [stop] turns
    true ([Ok ()]) or a record fails verification or apply
    ([Error] — divergence, never papered over). *)

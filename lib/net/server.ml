module Metrics = Secdb_obs.Metrics
module Trace = Secdb_obs.Trace
module Obs = Secdb_obs.Obs
module Rng = Secdb_util.Rng
module Xbytes = Secdb_util.Xbytes
module Pool = Secdb_util.Pool
module Etable = Secdb_query.Encrypted_table
module Schema = Secdb_db.Schema
module Shard = Secdb_db.Shard
module Ast = Secdb_sql.Ast
module Parser = Secdb_sql.Parser
module Engine = Secdb_sql.Engine
module Snapshot = Secdb_sql.Snapshot

type config = {
  auth_key : string;
  max_frame : int;
  max_inflight : int;
  read_timeout : float;
  write_timeout : float;
  shards : int;
}

let config ?(max_frame = Wire.default_max_frame) ?(max_inflight = 64) ?(read_timeout = 30.)
    ?(write_timeout = 30.) ?shards ~auth_key () =
  let shards = match shards with Some n -> n | None -> Pool.recommended () in
  if String.length auth_key < 16 then invalid_arg "Server.config: auth key shorter than 16 bytes";
  if max_frame < 64 then invalid_arg "Server.config: max_frame too small for a handshake";
  if max_inflight < 1 then invalid_arg "Server.config: max_inflight must be positive";
  if shards < 1 then invalid_arg "Server.config: shards must be positive";
  { auth_key; max_frame; max_inflight; read_timeout; write_timeout; shards }

(* Registered per server (not at module load) so a process that never
   serves — `secdb stats`, say — keeps its metric registry unchanged. *)
type metrics = {
  m_bytes_in : Metrics.counter;
  m_bytes_out : Metrics.counter;
  m_auth_failures : Metrics.counter;
  m_conn_total : Metrics.counter;
  g_conns : Metrics.gauge;
  m_rpc : (string * Metrics.counter) list;
  m_rpc_errors : Metrics.counter;
  h_rpc : (string * Metrics.histogram) list;
  m_snap_hits : Metrics.counter;
  m_snap_misses : Metrics.counter;
}

let op_names =
  [
    "ping";
    "stats";
    "sql";
    "put_cell";
    "get_cell";
    "insert_row";
    "decrypt_column";
    "index_lookup";
    "repl_pull";
    "repl_root";
  ]

let make_metrics () =
  {
    m_bytes_in = Metrics.counter "net.bytes_in";
    m_bytes_out = Metrics.counter "net.bytes_out";
    m_auth_failures = Metrics.counter "net.auth_failures";
    m_conn_total = Metrics.counter "net.connections_total";
    g_conns = Metrics.gauge "net.connections";
    m_rpc = List.map (fun op -> (op, Metrics.counter ~labels:[ ("op", op) ] "net.rpc")) op_names;
    m_rpc_errors = Metrics.counter "net.rpc_errors";
    h_rpc =
      List.map
        (fun op -> (op, Metrics.histogram ~labels:[ ("op", op) ] "net.rpc_latency"))
        op_names;
    m_snap_hits = Metrics.counter "shard.snapshot_hits";
    m_snap_misses = Metrics.counter "shard.snapshot_misses";
  }

(* --- bounded response queue (the per-connection in-flight cap) ------------- *)

module Bqueue = struct
  type 'a t = {
    q : 'a Queue.t;
    cap : int;
    mu : Mutex.t;
    not_full : Condition.t;
    not_empty : Condition.t;
    mutable closed : bool;
  }

  let create cap =
    {
      q = Queue.create ();
      cap;
      mu = Mutex.create ();
      not_full = Condition.create ();
      not_empty = Condition.create ();
      closed = false;
    }

  (* Blocks while the queue is full: with the writer thread draining at
     the peer's read speed, this is exactly TCP backpressure on the
     pipelining client. *)
  let push t x =
    Mutex.lock t.mu;
    while Queue.length t.q >= t.cap && not t.closed do
      Condition.wait t.not_full t.mu
    done;
    let accepted = not t.closed in
    if accepted then begin
      Queue.push x t.q;
      Condition.signal t.not_empty
    end;
    Mutex.unlock t.mu;
    accepted

  let pop t =
    Mutex.lock t.mu;
    while Queue.is_empty t.q && not t.closed do
      Condition.wait t.not_empty t.mu
    done;
    let item = if Queue.is_empty t.q then None else Some (Queue.pop t.q) in
    Condition.signal t.not_full;
    Mutex.unlock t.mu;
    item

  let close t =
    Mutex.lock t.mu;
    t.closed <- true;
    Condition.broadcast t.not_empty;
    Condition.broadcast t.not_full;
    Mutex.unlock t.mu
end

(* --- dispatch ---------------------------------------------------------------- *)

let dispatch db (req : Wire.req) : (Wire.resp, Wire.err_code * string) result =
  try
    match req with
    | Wire.Ping payload -> Ok (Wire.Pong payload)
    | Wire.Stats fmt ->
        let snap = Metrics.snapshot () in
        Ok
          (Wire.Stats_dump
             (match fmt with `Text -> Metrics.to_text snap | `Json -> Metrics.to_json snap))
    | Wire.Sql stmt -> (
        match Secdb_sql.Engine.exec db stmt with
        | Ok o -> Ok (Wire.Outcome o)
        | Error e -> Error (Wire.App, e))
    | Wire.Put_cell { table; row; col; value } -> (
        match Secdb.Encdb.update db ~table ~row ~col value with
        | Ok () -> Ok Wire.Updated
        | Error e -> Error (Wire.App, e))
    | Wire.Get_cell { table; row; col } -> (
        let tbl = Secdb.Encdb.table db table in
        let col_id = Schema.col_index (Etable.schema tbl) col in
        match Etable.get tbl ~row ~col:col_id with
        | Ok v -> Ok (Wire.Cell_value v)
        | Error e -> Error (Wire.App, e))
    | Wire.Insert_row { table; values } -> Ok (Wire.Row_id (Secdb.Encdb.insert db ~table values))
    | Wire.Decrypt_column { table; col } ->
        let tbl = Secdb.Encdb.table db table in
        let col_id = Schema.col_index (Etable.schema tbl) col in
        let cells = Etable.decrypt_column tbl ~col:col_id in
        Ok
          (Wire.Column
             (Array.to_list cells
             |> List.map (function
                  | None -> Wire.Tombstone
                  | Some (Ok v) -> Wire.Cell v
                  | Some (Error e) -> Wire.Cell_error e)))
    | Wire.Index_lookup { table; col; value } -> (
        match Secdb.Encdb.select_eq db ~table ~col value with
        | Ok rows -> Ok (Wire.Rows (List.map (fun (r, vs) -> (r, Array.to_list vs)) rows))
        | Error e -> Error (Wire.App, e))
    (* replication requests need the serving layer's role and shard map;
       the single-db reference dispatch has neither *)
    | Wire.Repl_pull _ -> Error (Wire.App, "replication pull needs a serving primary")
    | Wire.Repl_root -> Error (Wire.App, "attestation needs a serving node")
  with
  | Not_found -> Error (Wire.App, "no such table, column or index")
  | Invalid_argument e -> Error (Wire.App, e)
  | Failure e -> Error (Wire.App, e)
  | Secdb.Keyring.Session_closed -> Error (Wire.App, "session closed")
  | e -> Error (Wire.Server_error, Printexc.to_string e)

(* --- shards -------------------------------------------------------------------

   Every table lives in exactly one shard ({!Shard.key_shard} over its
   name), and each shard owns a full {!Secdb.Encdb.t} — tables, indexes,
   pager — plus one executor domain.  Connection readers route a request
   to its shard and hand the dispatch to that executor, so requests on
   different shards run in true parallel while a shard's own requests
   stay serialised (which is what keeps pipelined results byte-identical
   to the in-process API).

   After every mutation the executor folds the resulting
   {!Secdb.Encdb.change}s into an immutable {!Snapshot.t} and publishes
   it with one atomic store — the read fast path: point SELECTs are
   answered by reader threads straight from the last published snapshot,
   never blocking behind a writer.  Publication happens before the
   response is signalled, so a connection always reads its own writes. *)

type shard_state = {
  sdb : Secdb.Encdb.t;
  pending : Secdb.Encdb.change list ref;  (* filled by the on_change hook *)
  snap : Snapshot.t Atomic.t;
  jobs : (unit -> unit) Bqueue.t;
}

let make_shard db_of i =
  let sdb = db_of i in
  let pending = ref [] in
  Secdb.Encdb.set_on_change sdb (Some (fun ch -> pending := ch :: !pending));
  {
    sdb;
    pending;
    snap = Atomic.make (Snapshot.of_db sdb);
    jobs = Bqueue.create 64;
  }

let executor shards i =
  let sh = Shard.get shards i in
  let rec loop () =
    match Bqueue.pop sh.jobs with
    | None -> ()
    | Some job ->
        Shard.with_shard shards i (fun _ -> job ());
        loop ()
  in
  loop ()

(* Run a job on the shard's executor and wait for the result.  The
   change stream is offered to [on_changes] (the primary's oplog append)
   and the snapshot republished before the completion signal — so by the
   time a mutation is acked it is logged, folded and visible. *)
let submit_job ?(on_changes = fun (_ : Secdb.Encdb.change list) -> ()) sh f =
  let mu = Mutex.create () in
  let cond = Condition.create () in
  let result = ref None in
  let job () =
    let r = f () in
    (match List.rev !(sh.pending) with
    | [] -> ()
    | changes ->
        sh.pending := [];
        on_changes changes;
        Atomic.set sh.snap (List.fold_left Snapshot.apply (Atomic.get sh.snap) changes));
    Mutex.lock mu;
    result := Some r;
    Condition.signal cond;
    Mutex.unlock mu
  in
  if Bqueue.push sh.jobs job then begin
    Mutex.lock mu;
    while !result = None do
      Condition.wait cond mu
    done;
    Mutex.unlock mu;
    Ok (Option.get !result)
  end
  else Error `Draining

let submit ?on_changes sh req =
  match submit_job ?on_changes sh (fun () -> dispatch sh.sdb req) with
  | Ok r -> r
  | Error `Draining -> Error (Wire.Server_error, "server draining")

(* --- server ------------------------------------------------------------------- *)

(* What this node is in a replication topology.  A [Primary] appends
   every observed mutation to its oplog writer (inside the executor job,
   before the response is signalled, so an acked write is a logged
   write).  A [Replica] rejects mutations from clients — its only write
   path is {!apply_op}, fed by the pull loop — and serves reads from the
   same snapshot machinery as any other node. *)
type role =
  | Standalone
  | Primary of Secdb.Oplog.writer
  | Replica of { initial_applied : int }

type t = {
  cfg : config;
  role : role;
  repl_mu : Mutex.t;  (* serialises oplog appends and reads across shards *)
  applied : int Atomic.t;  (* ops reflected in the served state *)
  mutable repl_error : string option;  (* first oplog failure, under repl_mu *)
  shards : shard_state Shard.t;
  doms : unit Domain.t array;
  listen_fd : Unix.file_descr;
  address : Wire.addr;
  unix_path : string option;
  stop_flag : bool Atomic.t;
  lifecycle_mu : Mutex.t;
  drained_cond : Condition.t;
  mutable drained : bool;
  mutable running : bool;
  mutable accept_thread : Thread.t option;
  conn_mu : Mutex.t;
  conns : (int, Thread.t) Hashtbl.t;
  mutable active : int;
  rng : Rng.t;
  rng_mu : Mutex.t;
  m : metrics;
}

let default_seed () =
  Int64.logxor
    (Int64.of_float (Unix.gettimeofday () *. 1e6))
    (Int64.of_int (Unix.getpid () * 0x9e3779b9))

let create ?seed ?(role = Standalone) ~config:(cfg : config) ~db address =
  let seed = match seed with Some s -> s | None -> default_seed () in
  try
    let fd =
      match address with
      | Wire.Unix_sock path ->
          if Sys.file_exists path then Unix.unlink path;
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.bind fd (Unix.ADDR_UNIX path);
          fd
      | Wire.Tcp _ ->
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          Unix.setsockopt fd Unix.SO_REUSEADDR true;
          Unix.bind fd (Wire.sockaddr_of_addr address);
          fd
    in
    Unix.listen fd 64;
    let address =
      (* report the kernel-chosen port when asked for port 0 *)
      match (address, Unix.getsockname fd) with
      | Wire.Tcp (host, 0), Unix.ADDR_INET (_, port) -> Wire.Tcp (host, port)
      | _ -> address
    in
    let shards = Shard.create ~shards:cfg.shards (make_shard db) in
    let doms = Array.init cfg.shards (fun i -> Domain.spawn (fun () -> executor shards i)) in
    Ok
      {
        cfg;
        role;
        repl_mu = Mutex.create ();
        applied =
          Atomic.make
            (match role with
            | Standalone -> 0
            | Primary w -> Secdb.Oplog.count w
            | Replica { initial_applied } -> initial_applied);
        repl_error = None;
        shards;
        doms;
        listen_fd = fd;
        address;
        unix_path = (match address with Wire.Unix_sock p -> Some p | Wire.Tcp _ -> None);
        stop_flag = Atomic.make false;
        lifecycle_mu = Mutex.create ();
        drained_cond = Condition.create ();
        drained = false;
        running = false;
        accept_thread = None;
        conn_mu = Mutex.create ();
        conns = Hashtbl.create 16;
        active = 0;
        rng = Rng.create ~seed ();
        rng_mu = Mutex.create ();
        m = make_metrics ();
      }
  with Unix.Unix_error (e, fn, arg) ->
    Error
      (Printf.sprintf "cannot listen on %s: %s (%s %s)" (Wire.addr_to_string address)
         (Unix.error_message e) fn arg)

let addr t = t.address
let stopping t () = Atomic.get t.stop_flag

let fresh_nonce t =
  Mutex.lock t.rng_mu;
  let n = Rng.bytes t.rng 16 in
  Mutex.unlock t.rng_mu;
  n

(* The primary's oplog hook, run inside the executor job that performed
   the mutation — per-shard apply order and log order therefore agree,
   which is what makes a replica's replay byte-identical.  After a first
   append failure the log stops growing and pulls report the error;
   serving continues (the local state is still good), replication does
   not silently diverge. *)
let log_changes t changes =
  match t.role with
  | Primary w ->
      Mutex.lock t.repl_mu;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.repl_mu)
        (fun () ->
          match t.repl_error with
          | Some _ -> ()
          | None -> (
              try
                List.iter (fun ch -> ignore (Secdb.Oplog.append w (Repl.op_of_change ch))) changes;
                Atomic.set t.applied (Secdb.Oplog.count w)
              with e -> t.repl_error <- Some (Printexc.to_string e)))
  | Standalone | Replica _ -> ()

let is_replica t = match t.role with Replica _ -> true | Standalone | Primary _ -> false

let read_only_reject = Error (Wire.App, "read-only replica: mutations go to the primary")

(* Route one request.  Ping and Stats touch no table — answered inline.
   SQL parses once: the statement names its table, the table names its
   shard; a point SELECT is tried against the shard's published snapshot
   first (lock-free), everything else rides the shard's executor.  The
   remaining request forms carry their table explicitly.  On a replica
   every mutating form is rejected before it reaches a shard. *)
let exec_routed t (req : Wire.req) =
  let shard_of table = Shard.get t.shards (Shard.key_shard t.shards table) in
  let submit sh req = submit ~on_changes:(log_changes t) sh req in
  match req with
  | Wire.Ping _ | Wire.Stats _ -> dispatch (Shard.get t.shards 0).sdb req
  | Wire.Repl_pull { ack; max } -> (
      match t.role with
      | Primary w ->
          Mutex.lock t.repl_mu;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock t.repl_mu)
            (fun () ->
              match t.repl_error with
              | Some e -> Error (Wire.Server_error, "oplog failed: " ^ e)
              | None ->
                  if ack < 0 || max < 0 then Error (Wire.Bad_payload, "negative pull bounds")
                  else
                    let max = min max 1024 (* bound one response's size *) in
                    Ok
                      (Wire.Repl_records
                         {
                           durable = Secdb.Oplog.durable w;
                           records = Secdb.Oplog.read_sealed w ~from:ack ~max;
                         }))
      | Standalone | Replica _ -> Error (Wire.App, "not a primary"))
  | Wire.Repl_root ->
      (* all shard locks held: no executor is mid-mutation, so the
         digests and the applied count describe one consistent state *)
      let applied = ref 0 in
      let digests =
        Shard.with_all t.shards (fun i sh ->
            if i = 0 then applied := Atomic.get t.applied;
            Secdb.Encdb.digest sh.sdb)
      in
      Ok (Wire.Root { applied = !applied; root = Repl.combined_root digests })
  | Wire.Sql stmt_src -> (
      match Parser.parse stmt_src with
      | Error e -> Error (Wire.App, e)
      | Ok stmt -> (
          match stmt with
          | stmt when is_replica t && not (match stmt with Ast.Select _ | Ast.Explain _ -> true | _ -> false)
            ->
              read_only_reject
          | _ when
              (* every table a statement touches must live on one shard: a
                 JOIN spanning shards has no single executor that owns both
                 tables, so refuse it structurally instead of answering
                 from half the data *)
              List.length
                (List.sort_uniq compare
                   (List.map (Shard.key_shard t.shards) (Ast.stmt_tables stmt)))
              > 1 ->
              Error
                ( Wire.App,
                  Printf.sprintf "cross-shard JOIN: tables {%s} live on different shards"
                    (String.concat ", " (Ast.stmt_tables stmt)) )
          | _ -> (
              let sh = shard_of (Ast.stmt_table stmt) in
              match Engine.exec_snapshot (Atomic.get sh.snap) stmt with
              | Some r ->
                  Metrics.incr t.m.m_snap_hits;
                  (match r with Ok o -> Ok (Wire.Outcome o) | Error e -> Error (Wire.App, e))
              | None ->
                  (match stmt with Ast.Select _ -> Metrics.incr t.m.m_snap_misses | _ -> ());
                  submit sh req)))
  | (Wire.Put_cell _ | Wire.Insert_row _) when is_replica t -> read_only_reject
  | Wire.Put_cell { table; _ }
  | Wire.Get_cell { table; _ }
  | Wire.Insert_row { table; _ }
  | Wire.Decrypt_column { table; _ }
  | Wire.Index_lookup { table; _ } ->
      submit (shard_of table) req

(* The replica's single write path: apply one pulled (already verified)
   op on the shard executor it routes to, exactly as the primary's own
   mutations ride theirs. *)
let apply_op t op =
  let sh = Shard.get t.shards (Shard.key_shard t.shards (Secdb.Oplog.op_table op)) in
  match submit_job sh (fun () -> Secdb.Oplog.apply sh.sdb op) with
  | Ok (Ok ()) ->
      Atomic.incr t.applied;
      Ok ()
  | Ok (Error _ as e) -> e
  | Error `Draining -> Error "server draining"

let observe_in t frame = if Obs.on () then Metrics.add t.m.m_bytes_in (Wire.frame_size frame)
let observe_out t frame = if Obs.on () then Metrics.add t.m.m_bytes_out (Wire.frame_size frame)

let send t fd frame =
  observe_out t frame;
  Wire.write_frame ~timeout:t.cfg.write_timeout fd frame

(* Challenge–response over the fresh connection.  Returns the per-session
   request-MAC key; the master key plays no part here — both sides work
   from the derived [auth_key]. *)
let handshake t fd =
  let reject code message =
    ignore (send t fd (Wire.Conn_error { code; message }));
    Error ()
  in
  match
    Wire.read_frame ~stop:(stopping t) ~max_frame:t.cfg.max_frame ~timeout:t.cfg.read_timeout fd
  with
  | Error (`Too_large n) -> reject Wire.Too_large (Printf.sprintf "hello frame of %d bytes" n)
  | Error (`Bad_frame e) -> reject Wire.Frame e
  | Error (`Eof | `Timeout | `Stopped) -> Error ()
  | Ok (Wire.Hello { version; nonce = client_nonce }) -> (
      if version <> Wire.protocol_version then
        reject Wire.Frame (Printf.sprintf "unsupported protocol version %d" version)
      else
        let server_nonce = fresh_nonce t in
        match send t fd (Wire.Challenge { version = Wire.protocol_version; nonce = server_nonce }) with
        | Error _ -> Error ()
        | Ok () -> (
            match
              Wire.read_frame ~stop:(stopping t) ~max_frame:t.cfg.max_frame
                ~timeout:t.cfg.read_timeout fd
            with
            | Ok (Wire.Auth mac) ->
                let expected =
                  Wire.handshake_mac ~auth_key:t.cfg.auth_key ~client_nonce ~server_nonce
                in
                if Xbytes.constant_time_equal mac expected then
                  match
                    send t fd
                      (Wire.Auth_ok
                         (Wire.accept_mac ~auth_key:t.cfg.auth_key ~client_nonce ~server_nonce))
                  with
                  | Ok () ->
                      Ok (Wire.session_key ~auth_key:t.cfg.auth_key ~client_nonce ~server_nonce)
                  | Error _ -> Error ()
                else begin
                  Metrics.incr t.m.m_auth_failures;
                  reject Wire.Auth "handshake MAC mismatch"
                end
            | Ok _ -> reject Wire.Frame "expected an auth frame"
            | Error (`Too_large n) ->
                reject Wire.Too_large (Printf.sprintf "auth frame of %d bytes" n)
            | Error (`Bad_frame e) -> reject Wire.Frame e
            | Error (`Eof | `Timeout | `Stopped) -> Error ()))
  | Ok _ -> reject Wire.Frame "expected a hello frame"

let handle_request t session_mac (frame : Wire.frame) =
  match frame with
  | Wire.Request { id; body; mac } ->
      let expected = Wire.request_mac_keyed session_mac ~id ~body in
      if not (Xbytes.constant_time_equal mac expected) then begin
        Metrics.incr t.m.m_auth_failures;
        `Reply (Wire.Response { id; result = Error (Wire.Auth, "request MAC mismatch") })
      end
      else begin
        match Wire.decode_req body with
        | Error e ->
            Metrics.incr t.m.m_rpc_errors;
            `Reply (Wire.Response { id; result = Error (Wire.Bad_payload, e) })
        | Ok req ->
            let op = Wire.op_name req in
            (match List.assoc_opt op t.m.m_rpc with Some c -> Metrics.incr c | None -> ());
            let hist = List.assoc_opt op t.m.h_rpc in
            let result =
              Trace.with_span ~attrs:[ ("op", op) ] ?hist "net.dispatch" (fun () ->
                  exec_routed t req)
            in
            (match result with Error _ -> Metrics.incr t.m.m_rpc_errors | Ok _ -> ());
            `Reply
              (Wire.Response
                 { id; result = Result.map Wire.encode_resp result })
      end
  | _ -> `Close_after (Wire.Conn_error { code = Wire.Frame; message = "expected a request frame" })

let set_conn_gauge t delta =
  Mutex.lock t.conn_mu;
  t.active <- t.active + delta;
  Metrics.set t.m.g_conns t.active;
  Mutex.unlock t.conn_mu

let serve_conn t fd =
  Metrics.incr t.m.m_conn_total;
  set_conn_gauge t 1;
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      set_conn_gauge t (-1))
    (fun () ->
      match handshake t fd with
      | Error () -> ()
      | Ok session_key ->
          (* hoisted for the connection: every request verifies under the
             same keyed MAC *)
          let session_mac = Wire.session_mac ~session_key in
          let queue = Bqueue.create t.cfg.max_inflight in
          let dead = Atomic.make false in
          let writer =
            Thread.create
              (fun () ->
                let rec drain () =
                  match Bqueue.pop queue with
                  | None -> ()
                  | Some frame ->
                      if not (Atomic.get dead) then begin
                        observe_out t frame;
                        match
                          Wire.write_frame
                            ~stop:(fun () -> Atomic.get dead)
                            ~timeout:t.cfg.write_timeout fd frame
                        with
                        | Ok () -> ()
                        | Error _ -> Atomic.set dead true
                      end;
                      drain ()
                in
                drain ())
              ()
          in
          let rec loop () =
            if Atomic.get dead then ()
            else
              match
                Wire.read_frame ~stop:(stopping t) ~max_frame:t.cfg.max_frame
                  ~timeout:t.cfg.read_timeout fd
              with
              | Error (`Eof | `Timeout | `Stopped) -> ()
              | Error (`Too_large n) ->
                  ignore
                    (Bqueue.push queue
                       (Wire.Conn_error
                          { code = Wire.Too_large; message = Printf.sprintf "frame of %d bytes" n }))
              | Error (`Bad_frame e) ->
                  ignore (Bqueue.push queue (Wire.Conn_error { code = Wire.Frame; message = e }))
              | Ok frame -> (
                  observe_in t frame;
                  match handle_request t session_mac frame with
                  | `Reply reply ->
                      if Bqueue.push queue reply then loop ()
                  | `Close_after reply -> ignore (Bqueue.push queue reply))
          in
          loop ();
          Bqueue.close queue;
          Thread.join writer)

(* --- accept loop and lifecycle ------------------------------------------------ *)

let wait_readable ~stop fd =
  let rec go () =
    if stop () then false
    else
      match Unix.select [ fd ] [] [] 0.2 with
      | [], _, _ -> go ()
      | _ -> true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> false
  in
  go ()

let run t =
  Mutex.lock t.lifecycle_mu;
  if t.running || t.drained then begin
    Mutex.unlock t.lifecycle_mu;
    invalid_arg "Server.run: already running or stopped"
  end;
  t.running <- true;
  Mutex.unlock t.lifecycle_mu;
  let rec accept_loop () =
    if wait_readable ~stop:(stopping t) t.listen_fd then begin
      (match Unix.accept t.listen_fd with
      | fd, _ ->
          let th = Thread.create (fun () -> serve_conn t fd) () in
          Mutex.lock t.conn_mu;
          Hashtbl.replace t.conns (Thread.id th) th;
          Mutex.unlock t.conn_mu
      | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> ()
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> Atomic.set t.stop_flag true);
      accept_loop ()
    end
  in
  accept_loop ();
  (* drain: no new connections; every worker notices the stop flag within
     one select slice and finishes its current request first *)
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.unix_path with
  | Some p -> ( try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
  | None -> ());
  let workers =
    Mutex.lock t.conn_mu;
    let ws = Hashtbl.fold (fun _ th acc -> th :: acc) t.conns [] in
    Mutex.unlock t.conn_mu;
    ws
  in
  List.iter Thread.join workers;
  (* no submitter left: close the shard queues and park the executors *)
  Shard.iter t.shards (fun _ sh -> Bqueue.close sh.jobs);
  Array.iter Domain.join t.doms;
  Mutex.lock t.lifecycle_mu;
  t.running <- false;
  t.drained <- true;
  Condition.broadcast t.drained_cond;
  Mutex.unlock t.lifecycle_mu

let start t =
  let th = Thread.create (fun () -> run t) () in
  Mutex.lock t.lifecycle_mu;
  t.accept_thread <- Some th;
  Mutex.unlock t.lifecycle_mu

let request_stop t = Atomic.set t.stop_flag true

let stop t =
  request_stop t;
  Mutex.lock t.lifecycle_mu;
  let started = t.running || t.accept_thread <> None || t.drained in
  Mutex.unlock t.lifecycle_mu;
  if not started then begin
    (* never ran: park the executors and release the socket *)
    Shard.iter t.shards (fun _ sh -> Bqueue.close sh.jobs);
    Array.iter Domain.join t.doms;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (match t.unix_path with
    | Some p -> ( try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
    | None -> ());
    Mutex.lock t.lifecycle_mu;
    t.drained <- true;
    Mutex.unlock t.lifecycle_mu
  end
  else begin
    Mutex.lock t.lifecycle_mu;
    while not t.drained do
      Condition.wait t.drained_cond t.lifecycle_mu
    done;
    Mutex.unlock t.lifecycle_mu;
    match t.accept_thread with Some th -> Thread.join th | None -> ()
  end

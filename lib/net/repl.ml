module Rng = Secdb_util.Rng
module Nonce = Secdb_aead.Nonce
module Shard = Secdb_db.Shard
module Merkle = Secdb_storage.Merkle
module Oplog = Secdb.Oplog
module Encdb = Secdb.Encdb
module Keyring = Secdb.Keyring

(* --- log credentials --------------------------------------------------------

   The oplog key is derived from the same master secret as everything
   else, under its own label: possession of the master is what entitles a
   node to seal or verify replicated history.  Nonces never need to match
   across nodes (each record carries its own), but they must never repeat
   under this key — a resumed primary cannot restart a bare counter, so
   each boot draws a random 8-byte prefix and counts within it. *)

let log_aead ~master =
  let kr = Keyring.open_session ~master in
  Fun.protect
    ~finally:(fun () -> Keyring.close_session kr)
    (fun () ->
      Secdb_aead.Eax.make
        (Secdb_cipher.Aes_fast.cipher ~key:(Keyring.derive kr ~label:"secdb/oplog/key/v1" ~length:16)))

let log_nonce ~rng =
  let boot = Rng.bytes rng 8 in
  let ctr = Nonce.counter ~size:8 () in
  fun () -> boot ^ ctr ()

(* --- change → op mapping ----------------------------------------------------

   The primary's executors observe mutations as {!Encdb.change} events;
   each maps to exactly one oplog record.  A replica applying the records
   in log order re-derives the same change stream, the same row ids and —
   with equal seeds and shard counts — the same ciphertext bytes. *)

let op_of_change : Encdb.change -> Oplog.op = function
  | Encdb.Created_table schema -> Oplog.Create_table schema
  | Encdb.Created_index { table; col } -> Oplog.Create_index { table; col }
  | Encdb.Created_range_index { table; col; buckets } ->
      Oplog.Create_range_index { table; col; buckets }
  | Encdb.Inserted { table; values; _ } -> Oplog.Insert { table; values }
  | Encdb.Updated { table; row; col; value } -> Oplog.Update { table; row; col; value }
  | Encdb.Deleted { table; row } -> Oplog.Delete { table; row }

let route ~shards op = Shard.key_index ~shards (Oplog.op_table op)

let apply_routed dbs op =
  let i = route ~shards:(Array.length dbs) op in
  Oplog.apply dbs.(i) op

(* --- attestation ------------------------------------------------------------ *)

(* One root over the per-shard digests (in slot order): byte-identical
   state across every shard, in one constant-size comparison. *)
let combined_root digests = Merkle.root digests

let root_of_dbs dbs = combined_root (Array.to_list (Array.map Encdb.digest dbs))

(* --- point-in-time restore -------------------------------------------------- *)

let restore ?vfs ~path ~aead ~shards ~mkdb ?to_op () =
  if shards < 1 then invalid_arg "Repl.restore: need at least one shard";
  match Oplog.recover ?vfs ~path ~aead () with
  | Error e -> Error e
  | Ok (ops, tail) -> (
      let total = List.length ops in
      let upto = match to_op with None -> total | Some n -> n in
      if upto < 0 || upto > total then
        Error
          (Printf.sprintf
             "restore: requested op %d but the authenticated prefix holds %d (%s)" upto total
             (Oplog.tail_to_string tail))
      else
        let dbs = Array.init shards mkdb in
        let rec go applied = function
          | (_, op) :: rest when applied < upto -> (
              match apply_routed dbs op with
              | Ok () -> go (applied + 1) rest
              | Error e -> Error (Printf.sprintf "restore: op %d failed: %s" applied e))
          | _ -> Ok (dbs, applied)
        in
        go 0 ops)

(* --- the replica pull loop --------------------------------------------------

   Replication is pull-based over the ordinary authenticated RPC channel:
   the replica is just a client whose requests happen to be [Repl_pull].
   Each pull carries the replica's durable count as the ack, so the
   primary never needs per-replica state — crash either side, reconnect,
   and the ack re-synchronises the stream.  Every shipped record is
   re-verified (CRC, frame, seq-as-AD, AEAD tag) before it is stored or
   applied; a record that fails is a divergence and stops the replica
   rather than letting it apply unauthenticated history. *)

type progress = { got : int; primary_durable : int }

let pull_once client ~aead ?writer ~ack ~apply ?(max = 256) () =
  let ( let* ) = Result.bind in
  match Client.call client (Wire.Repl_pull { ack; max }) with
  | Error e -> Error (`Conn (Client.error_to_string e))
  | Ok (Wire.Repl_records { durable; records }) ->
      let step acc (seq, sealed) =
        let* applied = acc in
        let expected = ack + applied in
        if seq <> expected then
          Error (`Fatal (Printf.sprintf "repl: expected record %d, got %d" expected seq))
        else
          let verified =
            match writer with
            | Some w -> Oplog.append_sealed w sealed
            | None -> Oplog.verify_sealed ~aead ~seq sealed
          in
          match verified with
          | Error e -> Error (`Fatal e)
          | Ok op -> (
              match apply op with
              | Ok () -> Ok (applied + 1)
              | Error e -> Error (`Fatal (Printf.sprintf "repl: apply of op %d failed: %s" seq e)))
      in
      let* got = List.fold_left step (Ok 0) records in
      (* make the batch durable before the next ack can claim it *)
      (match writer with Some w -> Oplog.sync w | None -> ());
      Ok { got; primary_durable = durable }
  | Ok _ -> Error (`Fatal "repl: unexpected response to a pull")

let run_replica ~connect ~aead ?writer ~ack ~apply ?(max = 256) ?(poll = 0.05) ~stop () =
  let rec with_conn delay =
    if stop () then Ok ()
    else
      match connect () with
      | Error (_ : string) ->
          (* the primary is down or restarting; keep knocking with a
             capped backoff until it returns or we are told to stop *)
          (try Thread.delay delay with _ -> ());
          with_conn (Float.min 1.0 (delay *. 2.))
      | Ok client ->
          let rec pump () =
            if stop () then begin
              Client.close client;
              Ok ()
            end
            else
              match pull_once client ~aead ?writer ~ack:(ack ()) ~apply ~max () with
              | Ok { got = 0; _ } ->
                  (try Thread.delay poll with _ -> ());
                  pump ()
              | Ok _ -> pump ()
              | Error (`Conn _) ->
                  (* primary went away mid-stream: reconnect and re-ack *)
                  Client.close client;
                  with_conn poll
              | Error (`Fatal e) ->
                  Client.close client;
                  Error e
          in
          pump ()
  in
  with_conn poll

type hash = {
  name : string;
  digest : string -> string;
  digest_size : int;
  block_size : int;
}

let sha1 =
  { name = "sha1"; digest = Sha1.digest; digest_size = Sha1.digest_size; block_size = Sha1.block_size }

let sha256 =
  {
    name = "sha256";
    digest = Sha256.digest;
    digest_size = Sha256.digest_size;
    block_size = Sha256.block_size;
  }

let md5 =
  { name = "md5"; digest = Md5.digest; digest_size = Md5.digest_size; block_size = Md5.block_size }

(* The padded-key xor strings are pure functions of the key, so a keyed
   instance computes them once.  For SHA-256 the hoisting goes one block
   further: the ipad/opad strings are exactly one compression each, so the
   keyed instance stores the two midstates and a message costs two context
   copies instead of two key-block compressions and two concatenation
   copies.  The midstates are only ever [copy]d after construction, so
   sharing a keyed instance across domains stays safe. *)
type keyed = {
  h : hash;
  ipad : string;
  opad : string;
  mid : (Sha256.ctx * Sha256.ctx) option;  (* inner, outer midstates *)
}

let keyed h ~key =
  let key = if String.length key > h.block_size then h.digest key else key in
  let key = key ^ String.make (h.block_size - String.length key) '\000' in
  let ipad = String.map (fun c -> Char.chr (Char.code c lxor 0x36)) key
  and opad = String.map (fun c -> Char.chr (Char.code c lxor 0x5c)) key in
  let mid =
    if h == sha256 then begin
      let midstate pad =
        let c = Sha256.init () in
        Sha256.feed c pad;
        c
      in
      Some (midstate ipad, midstate opad)
    end
    else None
  in
  { h; ipad; opad; mid }

let mac_keyed_parts k parts =
  match k.mid with
  | Some (i0, o0) ->
      let c = Sha256.copy i0 in
      List.iter (Sha256.feed c) parts;
      let inner = Sha256.finish c in
      let o = Sha256.copy o0 in
      Sha256.feed o inner;
      Sha256.finish o
  | None ->
      k.h.digest (k.opad ^ k.h.digest (k.ipad ^ String.concat "" parts))

let mac_keyed k msg = mac_keyed_parts k [ msg ]

let mac_keyed_truncated k ~bytes msg = Secdb_util.Xbytes.take bytes (mac_keyed k msg)

let verify_keyed k ~tag msg =
  let computed = Secdb_util.Xbytes.take (String.length tag) (mac_keyed k msg) in
  Secdb_util.Xbytes.constant_time_equal computed tag

let mac h ~key msg = mac_keyed (keyed h ~key) msg

let mac_truncated h ~key ~bytes msg = Secdb_util.Xbytes.take bytes (mac h ~key msg)

let verify h ~key ~tag msg =
  let computed = Secdb_util.Xbytes.take (String.length tag) (mac h ~key msg) in
  Secdb_util.Xbytes.constant_time_equal computed tag

(** HMAC (RFC 2104) over any of the hash modules in this library. *)

type hash = {
  name : string;
  digest : string -> string;
  digest_size : int;
  block_size : int;
}

val sha1 : hash
val sha256 : hash
val md5 : hash

val mac : hash -> key:string -> string -> string
(** [mac h ~key msg] is the full-length HMAC tag. *)

val mac_truncated : hash -> key:string -> bytes:int -> string -> string
(** Tag truncated to the first [bytes] bytes. *)

val verify : hash -> key:string -> tag:string -> string -> bool
(** Constant-time verification of a (possibly truncated) tag. *)

type keyed
(** A key bound to a hash with the ipad/opad xor strings precomputed;
    immutable, safe to share across domains.  Lets long-lived users (a
    net session MACing every request, derived-nonce schemes hashing
    every cell address) skip the per-message key preprocessing. *)

val keyed : hash -> key:string -> keyed

val mac_keyed : keyed -> string -> string
(** Same tag as {!mac} with the same hash and key.  For SHA-256 the
    keyed instance holds the ipad/opad midstates, so the two key-block
    compressions and the concatenation copies are already paid. *)

val mac_keyed_parts : keyed -> string list -> string
(** The tag over the concatenation of [parts], without materialising
    it — framed MACs (the etm AEAD, the wire protocol) feed their
    fields directly. *)

val mac_keyed_truncated : keyed -> bytes:int -> string -> string

val verify_keyed : keyed -> tag:string -> string -> bool

let digest_size = 32
let block_size = 64

let mask = 0xffffffff

(* No mask: callers only feed rotations into xors and sums that are masked
   once at the end, and garbage above bit 31 can neither reach the low 32
   bits of a sum (carries go upward) nor survive the final mask. *)
let rotr x n = (x lsr n) lor (x lsl (32 - n))
let shr x n = x lsr n

let k =
  [| 0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
     0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
     0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
     0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
     0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
     0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
     0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
     0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
     0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
     0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
     0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2 |]

(* Full 64-byte blocks compress straight out of the message — no padded
   copy of the whole input; only the 1–2 tail blocks go through a small
   scratch buffer.  All table and schedule indices are bounded by the
   loop structure, so unsafe accesses are in range. *)
let get32 data i = Int32.to_int (String.get_int32_be data i) land mask

let compress h w data base =
  for t = 0 to 15 do
    Array.unsafe_set w t (get32 data (base + (4 * t)))
  done;
  for t = 16 to 63 do
    let w15 = Array.unsafe_get w (t - 15) and w2 = Array.unsafe_get w (t - 2) in
    let s0 = rotr w15 7 lxor rotr w15 18 lxor shr w15 3 in
    let s1 = rotr w2 17 lxor rotr w2 19 lxor shr w2 10 in
    Array.unsafe_set w t
      ((Array.unsafe_get w (t - 16) + s0 + Array.unsafe_get w (t - 7) + s1) land mask)
  done;
  (* the working state threads through a tail-recursive loop as immutable
     int locals — registers, not ref cells — two rounds per iteration.
     [ch] needs no extra mask: [lnot e land g] clears the high bits
     because [g] is 32-bit clean. *)
  let rec rounds t a b c d e f g hh =
    if t = 64 then begin
      let add i v = h.(i) <- (h.(i) + v) land mask in
      add 0 a; add 1 b; add 2 c; add 3 d; add 4 e; add 5 f; add 6 g; add 7 hh
    end
    else begin
      let s1 = rotr e 6 lxor rotr e 11 lxor rotr e 25 in
      let ch = (e land f) lxor (lnot e land g) in
      let t1 = (hh + s1 + ch + Array.unsafe_get k t + Array.unsafe_get w t) land mask in
      let s0 = rotr a 2 lxor rotr a 13 lxor rotr a 22 in
      let maj = (a land b) lxor (a land c) lxor (b land c) in
      let a' = (t1 + s0 + maj) land mask and e' = (d + t1) land mask in
      (* second round of the pair, state already rotated by one *)
      let s1 = rotr e' 6 lxor rotr e' 11 lxor rotr e' 25 in
      let ch = (e' land e) lxor (lnot e' land f) in
      let t1 =
        (g + s1 + ch + Array.unsafe_get k (t + 1) + Array.unsafe_get w (t + 1)) land mask
      in
      let s0 = rotr a' 2 lxor rotr a' 13 lxor rotr a' 22 in
      let maj = (a' land a) lxor (a' land b) lxor (a land b) in
      rounds (t + 2) ((t1 + s0 + maj) land mask) a' a b ((c + t1) land mask) e' e f
    end
  in
  rounds 0 h.(0) h.(1) h.(2) h.(3) h.(4) h.(5) h.(6) h.(7)

(* Incremental interface: the state plus at most one partial block.  Full
   blocks compress straight out of the caller's string; [copy] gives a
   cheap midstate snapshot (HMAC hoists the ipad/opad block this way). *)
type ctx = {
  st : int array;  (* the eight chaining words *)
  buf : Bytes.t;  (* pending partial block, [buf_len] bytes valid *)
  w : int array;  (* schedule scratch, contents never carried across calls *)
  mutable total : int;
  mutable buf_len : int;
}

let init () =
  {
    st =
      [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f;
         0x9b05688c; 0x1f83d9ab; 0x5be0cd19 |];
    buf = Bytes.create 64;
    w = Array.make 64 0;
    total = 0;
    buf_len = 0;
  }

let copy c =
  {
    st = Array.copy c.st;
    buf = Bytes.copy c.buf;
    w = Array.make 64 0;
    total = c.total;
    buf_len = c.buf_len;
  }

let feed c data =
  let len = String.length data in
  c.total <- c.total + len;
  let off = ref 0 in
  if c.buf_len > 0 then begin
    let n = min (64 - c.buf_len) len in
    Bytes.blit_string data 0 c.buf c.buf_len n;
    c.buf_len <- c.buf_len + n;
    off := n;
    if c.buf_len = 64 then begin
      compress c.st c.w (Bytes.unsafe_to_string c.buf) 0;
      c.buf_len <- 0
    end
  end;
  if c.buf_len = 0 then begin
    while !off + 64 <= len do
      compress c.st c.w data !off;
      off := !off + 64
    done;
    let rem = len - !off in
    if rem > 0 then begin
      Bytes.blit_string data !off c.buf 0 rem;
      c.buf_len <- rem
    end
  end

let finish c =
  let scratch = Bytes.make 128 '\000' in
  Bytes.blit c.buf 0 scratch 0 c.buf_len;
  Bytes.set scratch c.buf_len '\x80';
  let nt = if c.buf_len <= 55 then 1 else 2 in
  Secdb_util.Xbytes.set_uint64_be scratch ((64 * nt) - 8) (Int64.of_int (8 * c.total));
  let s = Bytes.unsafe_to_string scratch in
  compress c.st c.w s 0;
  if nt = 2 then compress c.st c.w s 64;
  let out = Bytes.create 32 in
  Array.iteri (fun i v -> Secdb_util.Xbytes.set_uint32_be out (4 * i) v) c.st;
  Bytes.unsafe_to_string out

let digest msg =
  let c = init () in
  feed c msg;
  finish c

let hex msg = Secdb_util.Xbytes.to_hex (digest msg)

(** SHA-256 (FIPS 180-4). Alternative instantiation for the address digest µ
    and the HMAC used by the encrypt-then-MAC AEAD composition. *)

val digest : string -> string
(** 32-byte digest. *)

val hex : string -> string
val digest_size : int (** 32 *)

val block_size : int (** 64 *)

type ctx
(** Incremental hashing state: eight chaining words plus at most one
    buffered partial block.  Mutable — one feeder at a time. *)

val init : unit -> ctx

val copy : ctx -> ctx
(** Snapshot, e.g. a midstate to resume from repeatedly.  HMAC hoists
    the ipad/opad block compression this way: the snapshot is taken
    once per key and copied per message. *)

val feed : ctx -> string -> unit
(** Absorb more message bytes; full blocks compress straight out of the
    argument without an intermediate copy. *)

val finish : ctx -> string
(** Pad, compress the tail and return the 32-byte digest.  Consumes the
    context: feeding it afterwards is a programming error. *)

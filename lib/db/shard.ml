module Metrics = Secdb_obs.Metrics

let m_routed = Metrics.counter "shard.routed"
let m_broadcasts = Metrics.counter "shard.broadcasts"
let g_count = Metrics.gauge "shard.count"

type 'a t = { slots : 'a array; locks : Mutex.t array }

let create ~shards f =
  if shards < 1 then invalid_arg "Shard.create: need at least one shard";
  let t =
    { slots = Array.init shards f; locks = Array.init shards (fun _ -> Mutex.create ()) }
  in
  Metrics.set g_count shards;
  t

let count t = Array.length t.slots

(* FNV-1a, 64-bit: platform-stable byte hashing so key placement can be
   recomputed anywhere (clients, offline tools, tests). *)
let fnv1a key =
  let h = ref (-3750763034362895579L) (* 0xcbf29ce484222325 *) in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 1099511628211L)
    key;
  !h

let key_index ~shards key =
  if shards < 1 then invalid_arg "Shard.key_index: need at least one shard";
  Int64.to_int (Int64.unsigned_rem (fnv1a key) (Int64.of_int shards))

let key_shard t key =
  Metrics.incr m_routed;
  key_index ~shards:(count t) key

let check t i =
  if i < 0 || i >= count t then invalid_arg (Printf.sprintf "Shard: slot %d out of range" i)

let get t i =
  check t i;
  t.slots.(i)

let with_shard t i f =
  check t i;
  Mutex.lock t.locks.(i);
  Fun.protect ~finally:(fun () -> Mutex.unlock t.locks.(i)) (fun () -> f t.slots.(i))

let with_key t key f = with_shard t (key_shard t key) f

let with_all t f =
  Metrics.incr m_broadcasts;
  let n = count t in
  for i = 0 to n - 1 do
    Mutex.lock t.locks.(i)
  done;
  Fun.protect
    ~finally:(fun () ->
      for i = n - 1 downto 0 do
        Mutex.unlock t.locks.(i)
      done)
    (fun () -> List.init n (fun i -> f i t.slots.(i)))

let iter t f =
  for i = 0 to count t - 1 do
    ignore (with_shard t i (fun v -> f i v))
  done

(** A shard map: [n] slots, each owning one value and one lock.

    The serving layer partitions the database by table name — every table
    (with its indexes, pager and histograms) lives in exactly one shard,
    and requests touching different shards run in true parallel instead
    of convoying behind a single global mutex.  The map itself is
    immutable after {!create}; all mutability lives in the values and is
    guarded by the per-slot locks.

    Lock order: {!with_all} takes slot locks in ascending index order and
    is the only function that ever holds two — any other code holding a
    shard lock must not acquire another.  That total order makes deadlock
    impossible by construction. *)

type 'a t

val create : shards:int -> (int -> 'a) -> 'a t
(** [create ~shards f] builds slot [i] from [f i], sequentially.
    @raise Invalid_argument if [shards < 1]. *)

val count : 'a t -> int

val key_index : shards:int -> string -> int
(** Pure placement: FNV-1a over the key bytes, mod [shards] — independent
    of process, session and platform, and of any live {!t}, so offline
    tools (log replay, restore) route exactly like a serving shard map.
    @raise Invalid_argument if [shards < 1]. *)

val key_shard : 'a t -> string -> int
(** [key_index ~shards:(count t)] — stable slot index for a key, so
    clients and tools can compute placement offline.  Counts one
    [shard.routed]. *)

val get : 'a t -> int -> 'a
(** Slot value without its lock — for immutable or lock-free reads.
    @raise Invalid_argument if the index is out of range. *)

val with_shard : 'a t -> int -> ('a -> 'b) -> 'b
(** Run under slot [i]'s lock. *)

val with_key : 'a t -> string -> ('a -> 'b) -> 'b
(** {!with_shard} at {!key_shard}; counts one [shard.routed]. *)

val with_all : 'a t -> (int -> 'a -> 'b) -> 'b list
(** Run over every slot holding {e all} locks, acquired in ascending
    order; results in slot order.  Counts one [shard.broadcasts].  For
    cross-shard operations that need a consistent global view (stats,
    schema listing). *)

val iter : 'a t -> (int -> 'a -> unit) -> unit
(** Visit every slot under its own lock, one at a time (no global
    consistency). *)

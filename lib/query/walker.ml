module Bptree = Secdb_index.Bptree
module Value = Secdb_db.Value
module Metrics = Secdb_obs.Metrics

(* [walker.false_positives] counts leaf entries that had to be decoded but
   fell outside [lo, hi] — the cells a range walk touches beyond what it
   returns, i.e. the bucket false-positive surface of the index layout. *)
let m_inner_checked = Metrics.counter "walker.inner_checked"
let m_leaf_checked = Metrics.counter "walker.leaf_checked"
let m_leaf_unchecked = Metrics.counter "walker.leaf_unchecked"
let m_results = Metrics.counter "walker.results"
let m_false_positives = Metrics.counter "walker.false_positives"

type mode = Published | Corrected

type answer = {
  results : (Value.t * int) list;
  inner_checked : int;
  leaf_checked : int;
  leaf_unchecked : int;
}

exception Stop of string

let range tree ~mode ?lo ?hi () =
  let codec = Bptree.codec tree in
  let inner_checked = ref 0 and leaf_checked = ref 0 and leaf_unchecked = ref 0 in
  let ctx_of (view : Bptree.node_view) =
    { Bptree.index_table = Bptree.id tree; node_row = view.row; kind = view.node_kind }
  in
  let decode_inner view slot =
    incr inner_checked;
    match codec.decode (ctx_of view) view.payloads.(slot) with
    | Ok (v, _) -> v
    | Error e -> raise (Stop (Printf.sprintf "inner node %d slot %d: %s" view.row slot e))
  in
  let decode_leaf view slot =
    match (mode, codec.decode_unverified) with
    | Published, Some unverified -> (
        incr leaf_unchecked;
        match unverified (ctx_of view) view.payloads.(slot) with
        | Ok r -> r
        | Error e -> raise (Stop (Printf.sprintf "leaf node %d slot %d: %s" view.row slot e)))
    | Published, None | Corrected, _ -> (
        incr leaf_checked;
        match codec.decode (ctx_of view) view.payloads.(slot) with
        | Ok r -> r
        | Error e -> raise (Stop (Printf.sprintf "leaf node %d slot %d: %s" view.row slot e)))
  in
  (* tree-walk to the starting leaf *)
  let rec descend row =
    let view = Bptree.node_view tree row in
    match view.node_kind with
    | Bptree.Leaf -> view
    | Bptree.Inner ->
        let k = Array.length view.payloads in
        let rec first_ge i =
          if
            i < k
            &&
            match lo with
            | Some probe -> Value.compare probe (decode_inner view i) > 0
            | None -> false
          then first_ge (i + 1)
          else i
        in
        descend view.children.(first_ge 0)
  in
  (* scan the right-sibling chain *)
  let results = ref [] in
  let false_positives = ref 0 in
  let rec scan (view : Bptree.node_view) =
    let stop = ref false in
    Array.iteri
      (fun slot _ ->
        if not !stop then begin
          let value, table_row = decode_leaf view slot in
          let below = match lo with Some v -> Value.compare value v < 0 | None -> false in
          let above = match hi with Some v -> Value.compare value v > 0 | None -> false in
          if above then begin
            incr false_positives;
            stop := true
          end
          else if below then incr false_positives
          else
            match table_row with
            | Some r -> results := (value, r) :: !results
            | None -> ()
        end)
      view.payloads;
    if not !stop then
      match view.next with Some next -> scan (Bptree.node_view tree next) | None -> ()
  in
  match
    let leaf = descend (Bptree.root tree) in
    scan leaf
  with
  | () ->
      Metrics.add m_inner_checked !inner_checked;
      Metrics.add m_leaf_checked !leaf_checked;
      Metrics.add m_leaf_unchecked !leaf_unchecked;
      Metrics.add m_results (List.length !results);
      Metrics.add m_false_positives !false_positives;
      Ok
        {
          results = List.rev !results;
          inner_checked = !inner_checked;
          leaf_checked = !leaf_checked;
          leaf_unchecked = !leaf_unchecked;
        }
  | exception Stop e -> Error e
  | exception Bptree.Integrity e -> Error e

let equal tree ~mode probe = range tree ~mode ~lo:probe ~hi:probe ()

open Secdb_util
module Value = Secdb_db.Value
module Schema = Secdb_db.Schema
module Address = Secdb_db.Address
module Metrics = Secdb_obs.Metrics

(* cells-touched traffic; scans count every decrypted row against the rows
   the predicate kept, so over-read (the false-positive surface the SoK
   paper says to measure, not assert) is visible as scanned - matched *)
let m_cells_encrypted = Metrics.counter "table.cells_encrypted"
let m_cells_decrypted = Metrics.counter "table.cells_decrypted"
let m_decrypt_failures = Metrics.counter "table.decrypt_failures"
let m_rows_scanned = Metrics.counter "table.rows_scanned"
let m_rows_matched = Metrics.counter "table.rows_matched"

type cell = Clear of Value.t | Cipher of string

type t = {
  id : int;
  schema : Schema.t;
  schemes : Secdb_schemes.Cell_scheme.t array; (* one per column *)
  rows : cell array option Vec.t; (* None = tombstoned row *)
}

let create ~id schema ~scheme =
  { id; schema; schemes = Array.init (Schema.ncols schema) scheme; rows = Vec.create () }

let id t = t.id
let schema t = t.schema
let scheme t ~col = t.schemes.(col)
let nrows t = Vec.length t.rows

let is_protected t col =
  (Schema.col t.schema col).Schema.protection = Schema.Encrypted

let encrypt_cell t ~row ~col value =
  Metrics.incr m_cells_encrypted;
  let addr = Address.v ~table:t.id ~row ~col in
  Cipher (t.schemes.(col).encrypt addr (Value.encode value))

let check_row_arity t values =
  let n = Schema.ncols t.schema in
  if List.length values <> n then
    invalid_arg
      (Printf.sprintf "Encrypted_table.insert: expected %d values, got %d" n
         (List.length values));
  List.iteri
    (fun col v ->
      match Schema.check_value (Schema.col t.schema col) v with
      | Ok () -> ()
      | Error e -> invalid_arg ("Encrypted_table.insert: " ^ e))
    values

let insert t values =
  check_row_arity t values;
  let row = Vec.length t.rows in
  let cells =
    List.mapi
      (fun col v -> if is_protected t col then encrypt_cell t ~row ~col v else Clear v)
      values
  in
  Vec.push t.rows (Some (Array.of_list cells))

let insert_many ?pool t rows =
  List.iter (check_row_arity t) rows;
  let ncols = Schema.ncols t.schema in
  let row0 = Vec.length t.rows in
  (* flatten the batch into per-column cell jobs so each column's scheme
     encrypts its cells in one (possibly parallel) sweep; job order within a
     column is row order, which keeps stateful (non-parallel-safe) schemes
     on exactly the byte sequence the per-row insert loop would produce *)
  let rows_arr = Array.of_list (List.map Array.of_list rows) in
  let nrows_new = Array.length rows_arr in
  let cells = Array.make_matrix nrows_new ncols (Clear Value.Null) in
  for col = 0 to ncols - 1 do
    if is_protected t col then begin
      let jobs =
        Array.init nrows_new (fun i ->
            ( Address.v ~table:t.id ~row:(row0 + i) ~col,
              Value.encode rows_arr.(i).(col) ))
      in
      Metrics.add m_cells_encrypted (Array.length jobs);
      let cts = Secdb_schemes.Cell_scheme.encrypt_cells ?pool t.schemes.(col) jobs in
      for i = 0 to nrows_new - 1 do
        cells.(i).(col) <- Cipher cts.(i)
      done
    end
    else
      for i = 0 to nrows_new - 1 do
        cells.(i).(col) <- Clear rows_arr.(i).(col)
      done
  done;
  Array.iter (fun row_cells -> ignore (Vec.push t.rows (Some row_cells))) cells

let decrypt_column ?pool t ~col =
  let n = nrows t in
  let live = Array.init n (fun row -> Vec.get t.rows row) in
  Array.mapi
    (fun row cells ->
      match cells with
      | None -> None
      | Some cells -> Some (row, cells.(col)))
    live
  |> fun tagged ->
  (* decrypt the protected cells in one batch sweep, clear cells inline *)
  let jobs =
    Array.of_list
      (List.filter_map
         (function
           | Some (row, Cipher ct) -> Some (Address.v ~table:t.id ~row ~col, ct)
           | _ -> None)
         (Array.to_list tagged))
  in
  Metrics.add m_cells_decrypted (Array.length jobs);
  let decs = Secdb_schemes.Cell_scheme.decrypt_cells ?pool t.schemes.(col) jobs in
  let next = ref 0 in
  Array.map
    (function
      | None -> None
      | Some (_, Clear v) -> Some (Ok v)
      | Some (_, Cipher _) ->
          let r = decs.(!next) in
          incr next;
          Some
            (match r with
            | Error e -> Error e
            | Ok plain -> Value.decode plain))
    tagged

let live_cells t row op =
  match Vec.get t.rows row with
  | Some cells -> cells
  | None -> invalid_arg (Printf.sprintf "Encrypted_table.%s: row %d is deleted" op row)

let is_live t ~row = Vec.get t.rows row <> None

let get t ~row ~col =
  match Vec.get t.rows row with
  | None -> Error "row is deleted"
  | Some cells -> (
      match cells.(col) with
      | Clear v -> Ok v
      | Cipher ct -> (
          Metrics.incr m_cells_decrypted;
          let addr = Address.v ~table:t.id ~row ~col in
          match t.schemes.(col).decrypt addr ct with
          | Error e ->
              Metrics.incr m_decrypt_failures;
              Error e
          | Ok plain -> Value.decode plain))

let get_exn t ~row ~col =
  match get t ~row ~col with
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "cell (%d,%d,%d): %s" t.id row col e)

let update t ~row ~col value =
  (match Schema.check_value (Schema.col t.schema col) value with
  | Ok () -> ()
  | Error e -> invalid_arg ("Encrypted_table.update: " ^ e));
  let cells = live_cells t row "update" in
  cells.(col) <- (if is_protected t col then encrypt_cell t ~row ~col value else Clear value)

let delete_row t ~row =
  ignore (Vec.get t.rows row);
  Vec.set t.rows row None

let decrypt_row t row =
  Array.init (Schema.ncols t.schema) (fun col -> get_exn t ~row ~col)

let select t pred =
  let acc = ref [] in
  for row = 0 to nrows t - 1 do
    if is_live t ~row then begin
      Metrics.incr m_rows_scanned;
      let values = decrypt_row t row in
      if pred values then begin
        Metrics.incr m_rows_matched;
        acc := (row, values) :: !acc
      end
    end
  done;
  List.rev !acc

let select_result t pred =
  match select t pred with
  | rows -> Ok rows
  | exception Failure e -> Error e

let raw_ciphertext t ~row ~col =
  match Vec.get t.rows row with
  | None -> None
  | Some cells -> ( match cells.(col) with Clear _ -> None | Cipher ct -> Some ct)

let set_raw t ~row ~col ct =
  let cells = live_cells t row "set_raw" in
  match cells.(col) with
  | Clear _ -> invalid_arg "Encrypted_table.set_raw: column is not protected"
  | Cipher _ -> cells.(col) <- Cipher ct

let swap_cells t ~col ~row_a ~row_b =
  match (raw_ciphertext t ~row:row_a ~col, raw_ciphertext t ~row:row_b ~col) with
  | Some a, Some b ->
      set_raw t ~row:row_a ~col b;
      set_raw t ~row:row_b ~col a
  | _ -> invalid_arg "Encrypted_table.swap_cells: column is not protected"

let storage_bytes t ~col =
  let acc = ref 0 in
  for row = 0 to nrows t - 1 do
    match raw_ciphertext t ~row ~col with
    | Some ct -> acc := !acc + String.length ct
    | None -> ()
  done;
  !acc

let plaintext_bytes t ~col =
  let acc = ref 0 in
  for row = 0 to nrows t - 1 do
    if is_live t ~row then
      acc := !acc + String.length (Value.encode (get_exn t ~row ~col))
  done;
  !acc

type stored_cell = Stored_clear of Value.t | Stored_cipher of string

let dump_rows t =
  List.init (nrows t) (fun row ->
      Option.map
        (Array.map (function Clear v -> Stored_clear v | Cipher ct -> Stored_cipher ct))
        (Vec.get t.rows row))

let restore ~id schema ~scheme ~rows =
  let t = create ~id schema ~scheme in
  let ncols = Schema.ncols schema in
  let rec load i = function
    | [] -> Ok t
    | None :: rest ->
        ignore (Vec.push t.rows None);
        load (i + 1) rest
    | Some row :: rest ->
        if Array.length row <> ncols then
          Error (Printf.sprintf "restore: row %d has %d cells, schema has %d columns" i
                   (Array.length row) ncols)
        else begin
          let ok = ref (Ok ()) in
          let cells =
            Array.mapi
              (fun col cell ->
                match (cell, (Schema.col schema col).Schema.protection) with
                | Stored_clear v, Schema.Clear -> Clear v
                | Stored_cipher ct, Schema.Encrypted -> Cipher ct
                | Stored_clear _, Schema.Encrypted ->
                    ok := Error (Printf.sprintf "restore: row %d col %d should be encrypted" i col);
                    Clear Value.Null
                | Stored_cipher _, Schema.Clear ->
                    ok := Error (Printf.sprintf "restore: row %d col %d should be clear" i col);
                    Clear Value.Null)
              row
          in
          match !ok with
          | Error e -> Error e
          | Ok () ->
              ignore (Vec.push t.rows (Some cells));
              load (i + 1) rest
        end
  in
  load 0 rows

(** Tables whose protected columns are stored under a cell encryption
    scheme.

    The structure of the table — row count, column positions, clear
    columns — is preserved exactly as in the analysed scheme; only cell
    contents change.  The adversary-facing accessors ([raw_ciphertext],
    [set_raw], [swap_cells]) model an attacker reading and writing the
    storage below the DBMS, bypassing access control. *)

type t

val create :
  id:int -> Secdb_db.Schema.t -> scheme:(int -> Secdb_schemes.Cell_scheme.t) -> t
(** [scheme col] picks the cell scheme protecting column [col] — the
    analysed scheme's own rule is per-column: the Append-Scheme "whenever
    there is not enough redundancy in the allowed type of data" for the
    XOR-Scheme.  Pass [Fun.const s] for a uniform choice. *)

val id : t -> int
val schema : t -> Secdb_db.Schema.t
val scheme : t -> col:int -> Secdb_schemes.Cell_scheme.t
val nrows : t -> int

val insert : t -> Secdb_db.Value.t list -> int
(** Type-checks against the schema, encrypts protected cells, appends. *)

val insert_many : ?pool:Secdb_util.Pool.t -> t -> Secdb_db.Value.t list list -> unit
(** Whole-table encrypt: type-check every row, then encrypt each protected
    column's cells in one batch sweep and append the rows in order.  With a
    pool, columns whose scheme is [parallel_safe] fan their cells out
    across domains; the stored bytes are identical to a sequential
    [insert] loop either way (cell addresses are assigned before
    encryption, and parallel-safe schemes are order-independent by
    definition).  Raises before any row is appended if validation fails. *)

val decrypt_column :
  ?pool:Secdb_util.Pool.t ->
  t ->
  col:int ->
  (Secdb_db.Value.t, string) result option array
(** Whole-column decrypt (and integrity check): index [row] holds [None]
    for tombstoned rows, [Some (Error _)] for cells failing the scheme's
    check.  Protected cells are decrypted in one batch sweep, parallel
    when the pool and scheme allow, with results in row order. *)

val get : t -> row:int -> col:int -> (Secdb_db.Value.t, string) result
(** Decrypts (and integrity-checks) protected cells. *)

val get_exn : t -> row:int -> col:int -> Secdb_db.Value.t
(** @raise Failure when the cell fails to decrypt. *)

val update : t -> row:int -> col:int -> Secdb_db.Value.t -> unit
(** Re-encrypts the cell in place (fresh nonce under the fixed scheme). *)

val delete_row : t -> row:int -> unit
(** Tombstone a row.  Because every cell's protection is bound to its
    (t, r, c) address, rows can never be compacted or renumbered without
    re-encrypting everything below them — deletion therefore marks the row
    dead and later reads fail.  Idempotent. *)

val is_live : t -> row:int -> bool

val select : t -> (Secdb_db.Value.t array -> bool) -> (int * Secdb_db.Value.t array) list
(** Decrypting full scan.
    @raise Failure when any visited cell fails integrity. *)

val select_result :
  t ->
  (Secdb_db.Value.t array -> bool) ->
  ((int * Secdb_db.Value.t array) list, string) result
(** Decrypting full scan; [Error] on the first cell failing integrity. *)

(* Adversary interface *)

val raw_ciphertext : t -> row:int -> col:int -> string option
(** Stored bytes of a protected cell ([None] for clear columns). *)

val set_raw : t -> row:int -> col:int -> string -> unit
(** Overwrite a protected cell's stored bytes without any check. *)

val swap_cells : t -> col:int -> row_a:int -> row_b:int -> unit
(** Exchange the stored bytes of two protected cells — the relocation move
    of the paper's substitution attack. *)

val storage_bytes : t -> col:int -> int
(** Total stored bytes of a protected column (experiment EXP7). *)

val plaintext_bytes : t -> col:int -> int
(** Total plaintext bytes of the same column, for overhead accounting. *)

(** {2 Storage-level view}

    The stored representation of a row: clear values in the clear,
    protected cells as ciphertext bytes — what the untrusted storage holds
    and what {!Secdb_storage} serialises. *)

type stored_cell = Stored_clear of Secdb_db.Value.t | Stored_cipher of string

val dump_rows : t -> stored_cell array option list
(** All rows in order, as stored; [None] marks a tombstoned row (row
    numbers must survive serialisation for the address binding). *)

val restore :
  id:int ->
  Secdb_db.Schema.t ->
  scheme:(int -> Secdb_schemes.Cell_scheme.t) ->
  rows:stored_cell array option list ->
  (t, string) result
(** Rebuild a table from its stored representation.  Checks arity and the
    clear/cipher layout against the schema, but deliberately not ciphertext
    integrity — tampering surfaces on the next {!get}. *)

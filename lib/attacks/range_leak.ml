open Secdb_util
module Rtree = Secdb_index.Range_tree
module Bptree = Secdb_index.Bptree
module Value = Secdb_db.Value
module Address = Secdb_db.Address

type report = {
  entries : int;
  nbuckets : int;
  order_pairs : int;
  order_recovered : float;
  value_recovered : float;
  hist_distance : float;
}

let attack ~tree ~truth ~distribution =
  let observed = Rtree.observed tree in
  let entries = List.length observed in
  let nbuckets = Rtree.nbuckets tree in
  (* (truth value, observed bucket) per entry, in seq order *)
  let pairs =
    Array.of_list
      (List.map
         (fun (seq, bucket) ->
           if seq < 0 || seq >= Array.length truth then
             invalid_arg "Range_leak.attack: truth does not cover an observed seq";
           (truth.(seq), bucket))
         observed)
  in
  (* order: a pair split across buckets is ordered with certainty
     (bucketization preserves order); same-bucket pairs give nothing *)
  let order_pairs = ref 0 and ordered = ref 0 in
  let n = Array.length pairs in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let vi, bi = pairs.(i) and vj, bj = pairs.(j) in
      if Value.compare vi vj <> 0 then begin
        incr order_pairs;
        if bi <> bj then incr ordered
      end
    done
  done;
  (* values: a bucket whose slice of the public distribution is a single
     distinct value gives away every entry in it; score only correct
     assignments *)
  let candidates = Array.make nbuckets [] in
  List.iter
    (fun (v, count) ->
      if count > 0 then
        let b = Rtree.bucket_of tree v in
        candidates.(b) <- v :: candidates.(b))
    distribution;
  let value_hits = ref 0 in
  Array.iter
    (fun (v, b) ->
      match candidates.(b) with
      | [ only ] when Value.compare only v = 0 -> incr value_hits
      | _ -> ())
    pairs;
  (* histogram: total-variation distance between the observed bucket
     histogram and the distribution-predicted one *)
  let observed_hist = Array.map float_of_int (Rtree.bucket_counts tree) in
  let predicted_hist = Array.make nbuckets 0.0 in
  let dist_total =
    List.fold_left
      (fun acc (v, count) ->
        predicted_hist.(Rtree.bucket_of tree v) <-
          predicted_hist.(Rtree.bucket_of tree v) +. float_of_int count;
        acc + count)
      0 distribution
  in
  let tv = ref 0.0 in
  for b = 0 to nbuckets - 1 do
    let o = if entries = 0 then 0.0 else observed_hist.(b) /. float_of_int entries in
    let p = if dist_total = 0 then 0.0 else predicted_hist.(b) /. float_of_int dist_total in
    tv := !tv +. abs_float (o -. p)
  done;
  let frac num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den in
  {
    entries;
    nbuckets;
    order_pairs = !order_pairs;
    order_recovered = frac !ordered !order_pairs;
    value_recovered = frac !value_hits entries;
    hist_distance = !tv /. 2.0;
  }

let bptree_order_leak values =
  let tree = Bptree.create ~id:0 ~codec:Bptree.plain_codec () in
  List.iteri (fun row v -> Bptree.insert tree v ~table_row:row) values;
  (* the leaf chain is public structure: its enumeration order is the
     adversary's inferred order *)
  let chain = Array.of_list (Bptree.range tree ()) in
  let n = Array.length chain in
  let pairs = ref 0 and correct = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let vi, _ = chain.(i) and vj, _ = chain.(j) in
      let c = Value.compare vi vj in
      if c <> 0 then begin
        incr pairs;
        if c < 0 then incr correct
      end
    done
  done;
  if !pairs = 0 then 0.0 else float_of_int !correct /. float_of_int !pairs

(* --- the pinned bench ----------------------------------------------------- *)

type line = { label : string; score : float; lo : float; hi : float }

let within l = l.score >= l.lo && l.score <= l.hi

(* an AEAD sealer over fresh keys — the deployed configuration, so the
   bench exercises the sealed path rather than plaintext buckets *)
let aead_sealer rng ~tree_id =
  let aead = Secdb_aead.Eax.make (Secdb_cipher.Aes_fast.cipher ~key:(Rng.bytes rng 16)) in
  let nonce = Secdb_aead.Nonce.of_rng rng ~size:aead.Secdb_aead.Aead.nonce_size in
  let scheme = Secdb_schemes.Fixed_cell.make ~aead ~nonce () in
  let addr ~seq ~bucket = Address.v ~table:tree_id ~row:seq ~col:bucket in
  {
    Rtree.sealer_name = scheme.Secdb_schemes.Cell_scheme.name;
    seal = (fun ~seq ~bucket p -> scheme.Secdb_schemes.Cell_scheme.encrypt (addr ~seq ~bucket) p);
    unseal =
      (fun ~seq ~bucket c -> scheme.Secdb_schemes.Cell_scheme.decrypt (addr ~seq ~bucket) c);
  }

let multiset values =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun v ->
      let k = Value.encode v in
      match Hashtbl.find_opt tbl k with
      | Some r -> incr r
      | None ->
          Hashtbl.add tbl k (ref 1);
          order := v :: !order)
    values;
  List.rev_map (fun v -> (v, !(Hashtbl.find tbl (Value.encode v)))) !order

let build rng ~tree_id ~buckets values =
  let boundaries = Rtree.quantile_boundaries ~buckets values in
  let tree = Rtree.create ~id:tree_id ~sealer:(aead_sealer rng ~tree_id) ~boundaries () in
  List.iteri (fun row v -> Rtree.insert tree v ~table_row:row) values;
  tree

let bench ?(seed = 0x5eed_ab1eL) () =
  let rng = Rng.create ~seed () in
  (* uniform: 512 draws over a 4096-value domain, 8 buckets — the generic
     workload.  Order leaks to bucket granularity (≈ 1 - 1/8), values and
     histogram leak nothing beyond public knowledge. *)
  let uniform = List.init 512 (fun _ -> Value.Int (Int64.of_int (Rng.int rng 4096))) in
  let utree = build rng ~tree_id:1 ~buckets:8 uniform in
  let ureport =
    attack ~tree:utree ~truth:(Array.of_list uniform) ~distribution:(multiset uniform)
  in
  (* skewed: three heavy values dominate 512 draws, 8 buckets — quantile
     cutting isolates heavy values in their own buckets, and the public
     distribution then pins every entry there exactly *)
  let skewed =
    List.init 512 (fun _ ->
        let r = Rng.int rng 100 in
        let v = if r < 40 then 7 else if r < 70 then 13 else if r < 90 then 42 else Rng.int rng 4096 in
        Value.Int (Int64.of_int v))
  in
  let stree = build rng ~tree_id:2 ~buckets:8 skewed in
  let sreport =
    attack ~tree:stree ~truth:(Array.of_list skewed) ~distribution:(multiset skewed)
  in
  [
    (* uniform order: 1 - 1/k = 0.875 for 8 equal buckets, measured 0.877 *)
    { label = "order-recovered/uniform-8"; score = ureport.order_recovered; lo = 0.85; hi = 0.90 };
    { label = "value-recovered/uniform-8"; score = ureport.value_recovered; lo = 0.0; hi = 0.02 };
    { label = "hist-distance/uniform-8"; score = ureport.hist_distance; lo = 0.0; hi = 0.01 };
    (* skew leaks MORE order: heavy values sit alone in their buckets, so
       nearly every distinct pair crosses buckets (measured 0.940) *)
    { label = "order-recovered/skewed-8"; score = sreport.order_recovered; lo = 0.90; hi = 0.97 };
    { label = "value-recovered/skewed-8"; score = sreport.value_recovered; lo = 0.65; hi = 0.80 };
    { label = "hist-distance/skewed-8"; score = sreport.hist_distance; lo = 0.0; hi = 0.01 };
    { label = "order-recovered/bptree-ref"; score = bptree_order_leak uniform; lo = 0.999; hi = 1.0 };
  ]

let render lines =
  let b = Buffer.create 256 in
  List.iter
    (fun l ->
      Buffer.add_string b
        (Printf.sprintf "%-28s %8.4f  [%.4f, %.4f]  %s\n" l.label l.score l.lo l.hi
           (if within l then "ok" else "OUT OF BOUNDS")))
    lines;
  Buffer.contents b

(** Quantifying the leakage of the bucketized range index.

    {!Secdb_index.Range_tree} trades leakage for range-query speed on
    purpose: the storage adversary sees each entry's bucket (its plaintext
    rank to bucket granularity), the insertion sequence, the plaintext
    bucket boundaries and hence the bucket histogram — and nothing else.
    This module turns that surface into numbers so the trade is pinned
    instead of hand-waved:

    - {e order recovered} — of all entry pairs holding distinct values,
      the fraction whose relative order the adversary infers (bucketization
      is order-preserving, so any pair split across two buckets is ordered
      with certainty; same-bucket pairs yield nothing).  With [k]
      equally-filled buckets this tends to [1 - 1/k] — the score grows
      with the bucket count, which is the leakage/performance dial.
    - {e value recovered} — entries the adversary assigns an exact
      plaintext, by intersecting the public value distribution with the
      bucket boundaries: a bucket whose boundary span contains a single
      distinct value gives away every entry in it.  Near zero for smooth
      distributions, grows with skew.
    - {e histogram distance} — total-variation distance between the
      observed bucket histogram and the one predicted from the public
      distribution.  Near zero: the histogram is {e fully} explained by
      public knowledge, i.e. it contains no extra secret-dependent signal
      (a large value would mean the model of the leakage is wrong).

    For calibration, {!bptree_order_leak} scores the same workload stored
    in a B⁺-tree index whose node structure is visible (the repository's
    exact index): the leaf chain reveals the {e total} order — 1.0 — which
    is what the bucketized structure improves on.

    The fixed-seed {!bench} drives the [@leakage] alias and the
    [secdb attack --range] CLI report; CI fails when any score leaves its
    declared interval — above means more leakage than the design admits,
    below means the harness stopped measuring. *)

type report = {
  entries : int;  (** sealed entries observed *)
  nbuckets : int;
  order_pairs : int;  (** entry pairs with distinct plaintext values *)
  order_recovered : float;  (** fraction of those pairs ordered by the adversary *)
  value_recovered : float;  (** fraction of entries assigned their exact value *)
  hist_distance : float;  (** TV distance, observed vs predicted histogram *)
}

val attack :
  tree:Secdb_index.Range_tree.t ->
  truth:Secdb_db.Value.t array ->
  distribution:(Secdb_db.Value.t * int) list ->
  report
(** [truth.(i)] is the plaintext behind sequence number [i] (insertion
    order), used only to score the adversary's inferences; the adversary
    itself sees {!Secdb_index.Range_tree.observed}, the boundaries and the
    public [distribution] (value, multiplicity). *)

val bptree_order_leak : Secdb_db.Value.t list -> float
(** Fraction of distinct-value pairs whose order the B⁺-tree leaf chain
    reveals for this workload — the reference point (expected 1.0: the
    chain {e is} the sorted order). *)

(** {2 The pinned bench} *)

type line = {
  label : string;
  score : float;
  lo : float;  (** scores below: the harness stopped measuring — fail *)
  hi : float;  (** scores above: more leakage than documented — fail *)
}

val within : line -> bool

val bench : ?seed:int64 -> unit -> line list
(** Fixed workloads (uniform and skewed integers, AEAD-sealed buckets, a
    B⁺-tree reference) scored with their declared bounds.  Deterministic
    for a given [seed]; the default seed is what CI and the cram test
    pin. *)

val render : line list -> string
(** Stable text rendering of a bench run — one [label score [lo, hi] ok?]
    line each — shared by the CLI and the [@leakage] gate. *)

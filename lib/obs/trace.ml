(* Span-based tracing with pluggable sinks.

   A span is opened around a unit of work ([with_span]); when the global
   switch is on, its wall-clock duration is measured once and delivered to
   the configured sink — and, optionally, to a latency histogram — so the
   cost is one [gettimeofday] pair per span.  When the switch is off the
   span body runs directly: no clock read, no allocation.

   Sinks:
     Null    count the span (trace.spans) but record nothing
     Ring    keep the last [ring_capacity] events in memory (tests, CLI)
     Stderr  emit one JSON object per line on stderr (offline analysis)

   The ring is mutex-protected rather than lock-free: spans live on cold
   paths (oplog appends, replays, CLI workloads), so simplicity wins over
   the last nanosecond, and the benchmark suite runs with the switch off
   anyway. *)

type event = {
  span : string;
  attrs : (string * string) list;
  start : float;
  duration : float;
}

type sink = Null | Ring | Stderr

let sink_state = Atomic.make Null
let set_sink s = Atomic.set sink_state s
let sink () = Atomic.get sink_state

let ring_capacity = 1024
let ring : event option array = Array.make ring_capacity None
let ring_mutex = Mutex.create ()
let ring_emitted = ref 0

let clear_ring () =
  Mutex.protect ring_mutex (fun () ->
      Array.fill ring 0 ring_capacity None;
      ring_emitted := 0)

let ring_events () =
  Mutex.protect ring_mutex (fun () ->
      let total = !ring_emitted in
      let n = min total ring_capacity in
      let first = if total <= ring_capacity then 0 else total mod ring_capacity in
      List.init n (fun i ->
          match ring.((first + i) mod ring_capacity) with
          | Some e -> e
          | None -> assert false))

let spans_total = Metrics.counter "trace.spans"

let json_of_event e =
  let attrs =
    String.concat ","
      (List.map
         (fun (k, v) ->
           Printf.sprintf "\"%s\":\"%s\"" (Metrics.json_escape k) (Metrics.json_escape v))
         e.attrs)
  in
  Printf.sprintf "{\"span\":\"%s\",\"start\":%.6f,\"duration\":%.9f,\"attrs\":{%s}}"
    (Metrics.json_escape e.span) e.start e.duration attrs

let emit e =
  Metrics.incr spans_total;
  match sink () with
  | Null -> ()
  | Ring ->
      Mutex.protect ring_mutex (fun () ->
          ring.(!ring_emitted mod ring_capacity) <- Some e;
          incr ring_emitted)
  | Stderr ->
      output_string stderr (json_of_event e);
      output_char stderr '\n';
      flush stderr

let with_span ?(attrs = []) ?hist span f =
  if not (Obs.on ()) then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    let finish () =
      let duration = Unix.gettimeofday () -. t0 in
      (match hist with Some h -> Metrics.observe h duration | None -> ());
      emit { span; attrs; start = t0; duration }
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

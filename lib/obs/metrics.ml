(* Process-wide metric registry: counters, gauges and log-scale latency
   histograms, addressable by a base name plus optional labels.

   Counters are striped: each counter owns a small array of atomics and an
   increment lands in the slot indexed by the calling domain's id, so
   parallel workloads (the Pool domains) never contend on one cache line
   and never lose counts.  Reads sum the stripes, which makes [value] a
   racy-but-monotone snapshot — exactly what a monitoring read wants.

   Histograms bucket by the position of the highest set bit of the
   nanosecond value: bucket [i] covers durations in [2^(i-1), 2^i) ns, so
   64 slots span sub-nanosecond to centuries with constant memory and no
   configuration.  Histograms sit on cold paths (oplog appends, replays),
   so their slots are shared atomics rather than stripes.

   Every operation that mutates a metric checks [Obs.on] first and does
   nothing — and allocates nothing — while the switch is off. *)

let stripes = 8
let stripe_index () = (Domain.self () :> int) land (stripes - 1)

type counter = { c_full : string; c_cells : int Atomic.t array }
type gauge = { g_full : string; g_cell : int Atomic.t }

let hist_buckets = 64

type histogram = {
  h_full : string;
  h_slots : int Atomic.t array;
  h_count : int Atomic.t;
  h_sum_ns : int Atomic.t;
}

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let reg_mutex = Mutex.create ()

let valid_name name =
  name <> ""
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> true | _ -> false)
       name

let full_name name labels =
  if not (valid_name name) then invalid_arg ("Metrics: bad metric name " ^ name);
  match labels with
  | [] -> name
  | kvs ->
      let kvs = List.sort (fun (a, _) (b, _) -> compare a b) kvs in
      name ^ "{"
      ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)
      ^ "}"

(* Registration is idempotent: asking for an existing (name, labels) pair
   returns the same metric, so modules can declare their counters at init
   without coordinating. *)
let register full make cast pack =
  Mutex.protect reg_mutex (fun () ->
      match Hashtbl.find_opt registry full with
      | Some m -> (
          match cast m with
          | Some x -> x
          | None -> invalid_arg ("Metrics: " ^ full ^ " already registered as another kind"))
      | None ->
          let x = make () in
          Hashtbl.add registry full (pack x);
          x)

(* --- counters ------------------------------------------------------------ *)

let counter ?(labels = []) name =
  let full = full_name name labels in
  register full
    (fun () -> { c_full = full; c_cells = Array.init stripes (fun _ -> Atomic.make 0) })
    (function C c -> Some c | _ -> None)
    (fun c -> C c)

let add c n = if Obs.on () then ignore (Atomic.fetch_and_add c.c_cells.(stripe_index ()) n)
let incr c = add c 1
let value c = Array.fold_left (fun acc cell -> acc + Atomic.get cell) 0 c.c_cells
let counter_name c = c.c_full

(* --- gauges -------------------------------------------------------------- *)

let gauge ?(labels = []) name =
  let full = full_name name labels in
  register full
    (fun () -> { g_full = full; g_cell = Atomic.make 0 })
    (function G g -> Some g | _ -> None)
    (fun g -> G g)

let set g n = if Obs.on () then Atomic.set g.g_cell n
let gauge_value g = Atomic.get g.g_cell

(* --- histograms ---------------------------------------------------------- *)

let histogram ?(labels = []) name =
  let full = full_name name labels in
  register full
    (fun () ->
      {
        h_full = full;
        h_slots = Array.init hist_buckets (fun _ -> Atomic.make 0);
        h_count = Atomic.make 0;
        h_sum_ns = Atomic.make 0;
      })
    (function H h -> Some h | _ -> None)
    (fun h -> H h)

let bucket_of_ns ns =
  let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
  min (hist_buckets - 1) (bits ns 0)

(* Upper edge of bucket [i] in seconds: 2^i ns. *)
let bucket_upper_s i = Int64.to_float (Int64.shift_left 1L i) *. 1e-9

let observe h seconds =
  if Obs.on () then begin
    let ns = int_of_float (seconds *. 1e9) in
    let ns = if ns < 0 then 0 else ns in
    ignore (Atomic.fetch_and_add h.h_slots.(bucket_of_ns ns) 1);
    ignore (Atomic.fetch_and_add h.h_count 1);
    ignore (Atomic.fetch_and_add h.h_sum_ns ns)
  end

let time h f =
  if Obs.on () then begin
    let t0 = Unix.gettimeofday () in
    Fun.protect ~finally:(fun () -> observe h (Unix.gettimeofday () -. t0)) f
  end
  else f ()

type hist_view = { count : int; sum_seconds : float; buckets : (int * int) list }

let hist_view h =
  let buckets = ref [] in
  for i = hist_buckets - 1 downto 0 do
    let n = Atomic.get h.h_slots.(i) in
    if n > 0 then buckets := (i, n) :: !buckets
  done;
  {
    count = Atomic.get h.h_count;
    sum_seconds = float_of_int (Atomic.get h.h_sum_ns) *. 1e-9;
    buckets = !buckets;
  }

let hist_count h = Atomic.get h.h_count

(* --- registry snapshots --------------------------------------------------- *)

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * hist_view) list;
}

let by_name (a, _) (b, _) = compare a b

let snapshot () =
  let metrics = Mutex.protect reg_mutex (fun () -> Hashtbl.fold (fun _ m acc -> m :: acc) registry []) in
  let counters = ref [] and gauges = ref [] and hists = ref [] in
  List.iter
    (function
      | C c -> counters := (c.c_full, value c) :: !counters
      | G g -> gauges := (g.g_full, gauge_value g) :: !gauges
      | H h -> hists := (h.h_full, hist_view h) :: !hists)
    metrics;
  {
    counters = List.sort by_name !counters;
    gauges = List.sort by_name !gauges;
    histograms = List.sort by_name !hists;
  }

let reset () =
  let metrics = Mutex.protect reg_mutex (fun () -> Hashtbl.fold (fun _ m acc -> m :: acc) registry []) in
  List.iter
    (function
      | C c -> Array.iter (fun cell -> Atomic.set cell 0) c.c_cells
      | G g -> Atomic.set g.g_cell 0
      | H h ->
          Array.iter (fun s -> Atomic.set s 0) h.h_slots;
          Atomic.set h.h_count 0;
          Atomic.set h.h_sum_ns 0)
    metrics

(* --- rendering ------------------------------------------------------------ *)

(* Text format is deterministic for a deterministic workload: one sorted
   line per metric, histograms rendered as their event count only (sums
   are wall-clock and would not be reproducible). *)
let to_text s =
  let b = Buffer.create 1024 in
  List.iter (fun (n, v) -> Buffer.add_string b (Printf.sprintf "counter %s %d\n" n v)) s.counters;
  List.iter (fun (n, v) -> Buffer.add_string b (Printf.sprintf "gauge %s %d\n" n v)) s.gauges;
  List.iter
    (fun (n, h) -> Buffer.add_string b (Printf.sprintf "hist %s count=%d\n" n h.count))
    s.histograms;
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json s =
  let b = Buffer.create 4096 in
  let kv (n, v) = Printf.sprintf "    {\"name\": \"%s\", \"value\": %d}" (json_escape n) v in
  Buffer.add_string b "{\n  \"counters\": [\n";
  Buffer.add_string b (String.concat ",\n" (List.map kv s.counters));
  Buffer.add_string b "\n  ],\n  \"gauges\": [\n";
  Buffer.add_string b (String.concat ",\n" (List.map kv s.gauges));
  Buffer.add_string b "\n  ],\n  \"histograms\": [\n";
  Buffer.add_string b
    (String.concat ",\n"
       (List.map
          (fun (n, h) ->
            Printf.sprintf
              "    {\"name\": \"%s\", \"count\": %d, \"sum_seconds\": %.9f, \"buckets\": [%s]}"
              (json_escape n) h.count h.sum_seconds
              (String.concat ", "
                 (List.map
                    (fun (i, c) -> Printf.sprintf "{\"le\": %.9f, \"n\": %d}" (bucket_upper_s i) c)
                    h.buckets)))
          s.histograms));
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

(** Span-based tracing with pluggable sinks.

    While {!Obs.on} is false, {!with_span} runs its body directly: no
    clock read, no allocation.  When on, each completed span is counted
    (counter [trace.spans]) and delivered to the configured sink. *)

type event = {
  span : string;
  attrs : (string * string) list;
  start : float;  (** [Unix.gettimeofday] at span open *)
  duration : float;  (** seconds *)
}

type sink =
  | Null  (** count spans, record nothing *)
  | Ring  (** keep the last {!ring_capacity} events in memory *)
  | Stderr  (** one JSON object per line on stderr *)

val set_sink : sink -> unit
val sink : unit -> sink

val ring_capacity : int
val ring_events : unit -> event list
(** Ring contents in emission order (oldest first). *)

val clear_ring : unit -> unit

val with_span :
  ?attrs:(string * string) list -> ?hist:Metrics.histogram -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f], recording one event named [name] around
    it.  The span is recorded (and [?hist] observed with the duration)
    whether [f] returns or raises. *)

val json_of_event : event -> string

(* Global observability switch.  Everything in Secdb_obs (and every
   instrumentation site in the library) checks [on ()] first: with the
   switch off the counters, histograms and spans cost one atomic load and
   a branch, and allocate nothing, so instrumented kernels keep their
   benchmark numbers.  The switch defaults to off; [SECDB_OBS=1] in the
   environment turns it on at program start. *)

let flag = Atomic.make false
let enable () = Atomic.set flag true
let disable () = Atomic.set flag false
let on () = Atomic.get flag

(* [noop] names the disabled state for call sites that want to restore it
   explicitly after a scoped enable. *)
let noop = disable

let with_enabled f =
  let was = on () in
  enable ();
  Fun.protect ~finally:(fun () -> if not was then disable ()) f

let () =
  match Sys.getenv_opt "SECDB_OBS" with
  | Some ("1" | "true" | "on") -> enable ()
  | _ -> ()

(** Global switch for the observability layer.

    All metric and trace operations are no-ops while the switch is off —
    one atomic load and a branch, no allocation — so instrumentation can
    live inside hot kernels without a measurable cost.  [SECDB_OBS=1] in
    the environment enables it at program start. *)

val enable : unit -> unit
val disable : unit -> unit

val noop : unit -> unit
(** Alias for [disable]: returns the layer to its free, do-nothing state. *)

val on : unit -> bool
(** Current state of the switch. *)

val with_enabled : (unit -> 'a) -> 'a
(** Run with the switch on, restoring the previous state afterwards. *)

(** Process-wide metric registry: counters, gauges and log-scale latency
    histograms, addressable by a base name plus optional labels.

    Mutating operations are no-ops (and allocation-free) while {!Obs.on}
    is false.  Counters are striped across per-domain atomic slots so
    parallel increments from {!Secdb_util.Pool} domains neither contend
    nor lose counts; reads sum the stripes. *)

(** {1 Counters} *)

type counter

val counter : ?labels:(string * string) list -> string -> counter
(** Find or create the counter registered under [name] and [labels].
    Registration is idempotent: the same (name, labels) pair always
    returns the same counter.  Raises [Invalid_argument] if the name is
    already registered as a different metric kind, or is not of the form
    [[A-Za-z0-9._-]+]. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val counter_name : counter -> string

(** {1 Gauges} *)

type gauge

val gauge : ?labels:(string * string) list -> string -> gauge
val set : gauge -> int -> unit
val gauge_value : gauge -> int

(** {1 Histograms}

    Log-scale: bucket [i] covers durations in [2^(i-1), 2^i) nanoseconds,
    64 buckets total. *)

type histogram

val histogram : ?labels:(string * string) list -> string -> histogram

val observe : histogram -> float -> unit
(** Record a duration in seconds. *)

val time : histogram -> (unit -> 'a) -> 'a
(** Run a thunk and record its wall-clock duration (when enabled). *)

val hist_count : histogram -> int

type hist_view = {
  count : int;
  sum_seconds : float;
  buckets : (int * int) list;  (** (bucket index, count), nonzero only *)
}

val hist_view : histogram -> hist_view

val bucket_upper_s : int -> float
(** Upper edge of a bucket index, in seconds. *)

(** {1 Registry} *)

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * hist_view) list;
}

val snapshot : unit -> snapshot
(** All registered metrics with their current values, sorted by name. *)

val reset : unit -> unit
(** Zero every registered metric (registrations survive). *)

val to_text : snapshot -> string
(** One sorted line per metric; histograms show their count only, so the
    output of a deterministic workload is itself deterministic. *)

val to_json : snapshot -> string
(** Full detail, including histogram buckets and wall-clock sums. *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON literal (shared with Trace). *)

(** Byte-string utilities shared by the whole code base.

    Conventions: immutable data travels as [string]; scratch buffers are
    [bytes].  All functions are pure unless stated otherwise. *)

val xor : string -> string -> string
(** [xor a b] is the bitwise exclusive-or of [a] and [b].  Following the
    paper's notation, if the lengths differ the shorter operand is implicitly
    extended with zero bytes, so the result has the length of the longer
    operand. *)

val xor_exact : string -> string -> string
(** [xor_exact a b] xors two strings of equal length.
    @raise Invalid_argument if lengths differ. *)

val xor_into : src:string -> dst:Bytes.t -> dst_off:int -> unit
(** [xor_into ~src ~dst ~dst_off] xors [src] into [dst] starting at
    [dst_off]. *)

val xor_blit :
  src:Bytes.t -> src_off:int -> dst:Bytes.t -> dst_off:int -> len:int -> unit
(** [xor_blit] xors [len] bytes of [src] into [dst] in place
    ([dst.(dst_off+i) <- dst.(dst_off+i) lxor src.(src_off+i)]) without
    allocating — the workhorse of the bulk mode kernels.  [src] and [dst]
    may be the same buffer as long as the ranges coincide exactly or do not
    overlap.
    @raise Invalid_argument if either range is out of bounds. *)

val of_hex : string -> string
(** Decode a hexadecimal string (case-insensitive, optional whitespace).
    @raise Invalid_argument on malformed input. *)

val to_hex : string -> string
(** Encode as lowercase hexadecimal. *)

val take : int -> string -> string
(** [take n s] is the first [n] bytes of [s] (all of [s] if shorter). *)

val drop : int -> string -> string
(** [drop n s] is [s] without its first [n] bytes ([""] if shorter). *)

val blocks : int -> string -> string list
(** [blocks n s] splits [s] into consecutive chunks of [n] bytes; the last
    chunk may be shorter.  [blocks n "" = []]. *)

val common_prefix_len : string -> string -> int
(** Length in bytes of the longest common prefix. *)

val common_block_prefix : block:int -> string -> string -> int
(** Number of leading whole [block]-sized chunks on which the two strings
    agree. *)

val repeat : int -> char -> string
(** [repeat n c] is the string of [n] copies of [c]. *)

val get_uint32_be : string -> int -> int
val get_uint32_le : string -> int -> int
val set_uint32_be : Bytes.t -> int -> int -> unit
val set_uint32_le : Bytes.t -> int -> int -> unit
(** 32-bit big/little-endian accessors; values are masked to 32 bits. *)

val get_uint64_be : string -> int -> int64
val set_uint64_be : Bytes.t -> int -> int64 -> unit

val int64_to_be_string : int64 -> string
(** 8-byte big-endian encoding. *)

val int_to_be_string : width:int -> int -> string
(** [int_to_be_string ~width n] is the [width]-byte big-endian encoding of
    the non-negative integer [n].
    @raise Invalid_argument if [n] does not fit or is negative. *)

val be_string_to_int : string -> int
(** Inverse of {!int_to_be_string} for values that fit in an OCaml [int].
    @raise Invalid_argument if the string is longer than 8 bytes or the
    value overflows. *)

val is_ascii_printable : string -> bool
(** True iff every byte is in the range [0x20, 0x7e]. *)

val is_ascii7 : string -> bool
(** True iff every byte has its most significant bit clear (0 ≤ b ≤ 127) —
    the redundancy condition used by the paper's XOR-scheme attack. *)

val constant_time_equal : string -> string -> bool
(** Timing-balanced comparison of two strings (also length-sensitive). *)

val flip_bit : string -> int -> string
(** [flip_bit s i] flips bit [i] (bit 0 = MSB of byte 0) of a copy of [s]. *)

(** CRC-32 (IEEE 802.3, reflected polynomial [0xEDB88320]).

    Not a cryptographic primitive: it detects accidental corruption —
    torn writes, bit rot — cheaply and attributably.  Integrity against
    an adversary is the AEAD layer's job. *)

val string : ?crc:int -> string -> int
(** [string s] is the CRC-32 of [s] as a non-negative int in
    [0, 2^32).  [~crc] continues a previous digest, so
    [string ~crc:(string a) b = string (a ^ b)]. *)

val update : int -> string -> off:int -> len:int -> int
(** Fold [len] bytes of [s] starting at [off] into [crc]. *)

(** Spawn-once domain work-pool for the bulk-encryption batch layer.

    A pool starts its worker domains exactly once ({!create}) and reuses
    them for every batch, so per-batch cost is two condition-variable
    round-trips rather than domain spawns.  Work inside a batch is
    distributed by chunked self-scheduling (an atomic cursor over the input
    array); every result is written at its input index, which makes the
    output {e order-deterministic}: for a pure function the result array is
    byte-identical to [Array.map], whatever the scheduling.

    The batch functions must only be called from the domain that created
    the pool, with functions that are safe to run concurrently with
    themselves (the cipher kernels and every [parallel_safe] cell scheme
    qualify; closures over shared mutable state — nonce counters,
    instrumentation — do not). *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] worker domains (the caller's
    domain is the remaining participant).  Defaults to
    {!Domain.recommended_domain_count}.  A 1-domain pool degrades to plain
    sequential execution with no domains spawned.
    @raise Invalid_argument if [domains < 1]. *)

val recommended : unit -> int
(** [Domain.recommended_domain_count], floored at 1. *)

val domains : t -> int
(** Total participating domains, including the caller. *)

val map_array : ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map] with deterministic output order.  [chunk] is the
    number of consecutive elements a participant claims at a time (default:
    input size / 8·domains, floored at 1).  If any application raises, the
    batch finishes early and the first exception observed is re-raised in
    the caller. *)

val map_list : ?chunk:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** List version of {!map_array} (converts through arrays). *)

val mapi_array : ?chunk:int -> t -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** Indexed version of {!map_array}. *)

val shutdown : t -> unit
(** Stop and join the workers.  Idempotent; the pool must not be used
    afterwards. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] over a fresh pool and always shuts it down. *)

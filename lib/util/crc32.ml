(* CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven.  Used as a
   cheap torn-write detector on oplog records: the AEAD tag already
   authenticates a complete record, but a record cut mid-write fails the
   CRC without paying for an AEAD decrypt, and the failure is attributable
   to storage (torn tail) rather than to an adversary. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc s ~off ~len =
  let table = Lazy.force table in
  let c = ref (crc lxor 0xffffffff) in
  for i = off to off + len - 1 do
    c := Array.unsafe_get table ((!c lxor Char.code (String.unsafe_get s i)) land 0xff)
         lxor (!c lsr 8)
  done;
  !c lxor 0xffffffff

let string ?(crc = 0) s = update crc s ~off:0 ~len:(String.length s)

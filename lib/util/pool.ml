(* Spawn-once domain pool.  [create] starts [domains - 1] worker domains
   that park on a condition variable; each batch publishes one thread-safe
   body closure that every participant (workers and the calling domain)
   runs to completion.  Work distribution inside a batch is chunked
   self-scheduling over an atomic cursor, and results land at their input
   index, so the output order is deterministic whatever the interleaving. *)

module Metrics = Secdb_obs.Metrics

(* batch/task/chunk traffic; [pool.seq_fallback] counts map calls that ran
   sequentially because the pool has a single domain *)
let m_batches = Metrics.counter "pool.batches"
let m_tasks = Metrics.counter "pool.tasks"
let m_chunks = Metrics.counter "pool.chunks"
let m_seq_fallback = Metrics.counter "pool.seq_fallback"
let g_domains = Metrics.gauge "pool.domains"

type t = {
  ndomains : int;
  mutable workers : unit Domain.t array;
  m : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable job : (unit -> unit) option;
  mutable generation : int;
  mutable pending : int;
  mutable stopped : bool;
}

let recommended () = max 1 (Domain.recommended_domain_count ())

let rec worker_loop t seen =
  Mutex.lock t.m;
  while (not t.stopped) && t.generation = seen do
    Condition.wait t.work_ready t.m
  done;
  if t.stopped then Mutex.unlock t.m
  else begin
    let gen = t.generation in
    let job = Option.get t.job in
    Mutex.unlock t.m;
    job ();
    Mutex.lock t.m;
    t.pending <- t.pending - 1;
    if t.pending = 0 then Condition.broadcast t.work_done;
    Mutex.unlock t.m;
    worker_loop t gen
  end

let create ?domains () =
  let ndomains =
    match domains with
    | None -> recommended ()
    | Some d ->
        if d < 1 then invalid_arg "Pool.create: domains must be >= 1";
        d
  in
  let t =
    {
      ndomains;
      workers = [||];
      m = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      job = None;
      generation = 0;
      pending = 0;
      stopped = false;
    }
  in
  t.workers <- Array.init (ndomains - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t 0));
  Metrics.set g_domains ndomains;
  t

let domains t = t.ndomains

let shutdown t =
  Mutex.lock t.m;
  let first = not t.stopped in
  t.stopped <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.m;
  if first then Array.iter Domain.join t.workers;
  t.workers <- [||]

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Run [body] on every participating domain and wait for all of them.
   [body] must be safe to run concurrently with itself. *)
let run_batch t body =
  if t.stopped then invalid_arg "Pool: used after shutdown";
  if Array.length t.workers = 0 then body ()
  else begin
    Metrics.incr m_batches;
    Mutex.lock t.m;
    t.job <- Some body;
    t.generation <- t.generation + 1;
    t.pending <- Array.length t.workers;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.m;
    body ();
    Mutex.lock t.m;
    while t.pending > 0 do
      Condition.wait t.work_done t.m
    done;
    t.job <- None;
    Mutex.unlock t.m
  end

let default_chunk n ndomains =
  (* a few chunks per domain amortizes the cursor without starving anyone *)
  max 1 (n / (ndomains * 8))

let map_array ?chunk t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else if t.ndomains = 1 then begin
    Metrics.incr m_seq_fallback;
    Metrics.add m_tasks n;
    Array.map f xs
  end
  else begin
    Metrics.add m_tasks n;
    let chunk =
      match chunk with
      | Some c -> if c < 1 then invalid_arg "Pool.map_array: chunk must be >= 1" else c
      | None -> default_chunk n t.ndomains
    in
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    let error = Atomic.make None in
    let body () =
      let rec grab () =
        let start = Atomic.fetch_and_add cursor chunk in
        if start < n && Atomic.get error = None then begin
          Metrics.incr m_chunks;
          (try
             for i = start to min n (start + chunk) - 1 do
               results.(i) <- Some (f xs.(i))
             done
           with e -> ignore (Atomic.compare_and_set error None (Some e)));
          grab ()
        end
      in
      grab ()
    in
    run_batch t body;
    match Atomic.get error with
    | Some e -> raise e
    | None ->
        Array.map (function Some v -> v | None -> assert false) results
  end

let map_list ?chunk t f xs = Array.to_list (map_array ?chunk t f (Array.of_list xs))

let mapi_array ?chunk t f xs =
  let indexed = Array.mapi (fun i x -> (i, x)) xs in
  map_array ?chunk t (fun (i, x) -> f i x) indexed

let xor a b =
  let la = String.length a and lb = String.length b in
  let n = max la lb in
  let out = Bytes.create n in
  for i = 0 to n - 1 do
    let x = if i < la then Char.code a.[i] else 0
    and y = if i < lb then Char.code b.[i] else 0 in
    Bytes.unsafe_set out i (Char.unsafe_chr (x lxor y))
  done;
  Bytes.unsafe_to_string out

let xor_exact a b =
  if String.length a <> String.length b then
    invalid_arg "Xbytes.xor_exact: length mismatch";
  xor a b

let xor_into ~src ~dst ~dst_off =
  let len = String.length src in
  if dst_off < 0 || dst_off + len > Bytes.length dst then
    invalid_arg "Xbytes.xor_into: range out of bounds";
  (* same lane discipline as [xor_blit]: 8-byte words, byte tail *)
  let lanes = len lsr 3 in
  for w = 0 to lanes - 1 do
    let i = w lsl 3 in
    Bytes.set_int64_ne dst (dst_off + i)
      (Int64.logxor
         (Bytes.get_int64_ne dst (dst_off + i))
         (String.get_int64_ne src i))
  done;
  for i = lanes lsl 3 to len - 1 do
    Bytes.unsafe_set dst (dst_off + i)
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get dst (dst_off + i)) lxor Char.code (String.unsafe_get src i)))
  done

let xor_blit ~src ~src_off ~dst ~dst_off ~len =
  if
    len < 0
    || src_off < 0
    || dst_off < 0
    || src_off + len > Bytes.length src
    || dst_off + len > Bytes.length dst
  then invalid_arg "Xbytes.xor_blit: range out of bounds";
  (* 8-byte lanes first (the intermediates stay unboxed), bytes for the
     tail.  A lane reads both whole words before writing, so the aliasing
     contract (identical or disjoint ranges) gives the same result as the
     byte loop. *)
  let lanes = len lsr 3 in
  for w = 0 to lanes - 1 do
    let i = w lsl 3 in
    Bytes.set_int64_ne dst (dst_off + i)
      (Int64.logxor
         (Bytes.get_int64_ne dst (dst_off + i))
         (Bytes.get_int64_ne src (src_off + i)))
  done;
  for i = lanes lsl 3 to len - 1 do
    Bytes.unsafe_set dst (dst_off + i)
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get dst (dst_off + i))
         lxor Char.code (Bytes.unsafe_get src (src_off + i))))
  done

let hex_digit_value c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Xbytes.of_hex: invalid hex digit"

let of_hex s =
  let buf = Buffer.create (String.length s / 2) in
  let pending = ref (-1) in
  String.iter
    (fun c ->
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then ()
      else begin
        let v = hex_digit_value c in
        if !pending < 0 then pending := v
        else begin
          Buffer.add_char buf (Char.chr ((!pending lsl 4) lor v));
          pending := -1
        end
      end)
    s;
  if !pending >= 0 then invalid_arg "Xbytes.of_hex: odd number of digits";
  Buffer.contents buf

let to_hex s =
  let digits = "0123456789abcdef" in
  let out = Bytes.create (2 * String.length s) in
  String.iteri
    (fun i c ->
      let b = Char.code c in
      Bytes.set out (2 * i) digits.[b lsr 4];
      Bytes.set out ((2 * i) + 1) digits.[b land 0xf])
    s;
  Bytes.unsafe_to_string out

let take n s = if n >= String.length s then s else String.sub s 0 n

let drop n s =
  if n >= String.length s then "" else String.sub s n (String.length s - n)

let blocks n s =
  if n <= 0 then invalid_arg "Xbytes.blocks: block size must be positive";
  let rec loop off acc =
    if off >= String.length s then List.rev acc
    else
      let len = min n (String.length s - off) in
      loop (off + len) (String.sub s off len :: acc)
  in
  loop 0 []

let common_prefix_len a b =
  let n = min (String.length a) (String.length b) in
  let rec loop i = if i < n && a.[i] = b.[i] then loop (i + 1) else i in
  loop 0

let common_block_prefix ~block a b =
  if block <= 0 then invalid_arg "Xbytes.common_block_prefix";
  common_prefix_len a b / block

let repeat n c = String.make n c

let get_uint32_be s i =
  (Char.code s.[i] lsl 24)
  lor (Char.code s.[i + 1] lsl 16)
  lor (Char.code s.[i + 2] lsl 8)
  lor Char.code s.[i + 3]

let get_uint32_le s i =
  Char.code s.[i]
  lor (Char.code s.[i + 1] lsl 8)
  lor (Char.code s.[i + 2] lsl 16)
  lor (Char.code s.[i + 3] lsl 24)

let set_uint32_be b i v =
  Bytes.set b i (Char.chr ((v lsr 24) land 0xff));
  Bytes.set b (i + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (i + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (i + 3) (Char.chr (v land 0xff))

let set_uint32_le b i v =
  Bytes.set b i (Char.chr (v land 0xff));
  Bytes.set b (i + 1) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (i + 2) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (i + 3) (Char.chr ((v lsr 24) land 0xff))

let get_uint64_be s i =
  let hi = get_uint32_be s i and lo = get_uint32_be s (i + 4) in
  Int64.logor (Int64.shift_left (Int64.of_int hi) 32) (Int64.of_int lo)

let set_uint64_be b i v =
  set_uint32_be b i (Int64.to_int (Int64.shift_right_logical v 32) land 0xffffffff);
  set_uint32_be b (i + 4) (Int64.to_int v land 0xffffffff)

let int64_to_be_string v =
  let b = Bytes.create 8 in
  set_uint64_be b 0 v;
  Bytes.unsafe_to_string b

let int_to_be_string ~width n =
  if n < 0 then invalid_arg "Xbytes.int_to_be_string: negative";
  let b = Bytes.make width '\000' in
  let rec loop i v =
    if v > 0 then
      if i < 0 then invalid_arg "Xbytes.int_to_be_string: overflow"
      else begin
        Bytes.set b i (Char.chr (v land 0xff));
        loop (i - 1) (v lsr 8)
      end
  in
  loop (width - 1) n;
  Bytes.unsafe_to_string b

let be_string_to_int s =
  if String.length s > 8 then invalid_arg "Xbytes.be_string_to_int: too long";
  let v =
    String.fold_left (fun acc c -> (acc lsl 8) lor Char.code c) 0 s
  in
  if v < 0 then invalid_arg "Xbytes.be_string_to_int: overflow";
  v

let is_ascii_printable s =
  String.for_all (fun c -> Char.code c >= 0x20 && Char.code c <= 0x7e) s

let is_ascii7 s = String.for_all (fun c -> Char.code c <= 0x7f) s

let constant_time_equal a b =
  let la = String.length a and lb = String.length b in
  let acc = ref (la lxor lb) in
  for i = 0 to min la lb - 1 do
    acc := !acc lor (Char.code a.[i] lxor Char.code b.[i])
  done;
  !acc = 0

let flip_bit s i =
  let byte = i / 8 and bit = i mod 8 in
  if byte >= String.length s then invalid_arg "Xbytes.flip_bit: out of range";
  let b = Bytes.of_string s in
  Bytes.set b byte (Char.chr (Char.code s.[byte] lxor (0x80 lsr bit)));
  Bytes.unsafe_to_string b

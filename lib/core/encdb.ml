open Secdb_util
module Value = Secdb_db.Value
module Schema = Secdb_db.Schema
module Address = Secdb_db.Address
module Bptree = Secdb_index.Bptree
module Etable = Secdb_query.Encrypted_table
module Walker = Secdb_query.Walker
module Einst = Secdb_schemes.Einst

type fixed_aead = Eax | Ocb | Ccfb | Etm | Gcm | Siv

type profile =
  | Elovici_append
  | Elovici_xor
  | Shmueli_improved
  | Shmueli_repaired_keys
  | Fixed of fixed_aead
  | Siv_deterministic

let fixed_aead_name = function
  | Eax -> "eax"
  | Ocb -> "ocb"
  | Ccfb -> "ccfb"
  | Etm -> "etm"
  | Gcm -> "gcm"
  | Siv -> "siv"

let profile_name = function
  | Elovici_append -> "elovici-append"
  | Elovici_xor -> "elovici-xor"
  | Shmueli_improved -> "shmueli-improved"
  | Shmueli_repaired_keys -> "shmueli-repaired-keys"
  | Fixed a -> "fixed-" ^ fixed_aead_name a
  | Siv_deterministic -> "siv-deterministic"

let all_profiles =
  [
    Elovici_append;
    Elovici_xor;
    Shmueli_improved;
    Shmueli_repaired_keys;
    Fixed Eax;
    Fixed Ocb;
    Fixed Ccfb;
    Fixed Etm;
    Fixed Gcm;
    Fixed Siv;
    Siv_deterministic;
  ]

module Pbt = Secdb_storage.Paged_bptree
module Rtree = Secdb_index.Range_tree
module Metrics = Secdb_obs.Metrics
module Obs = Secdb_obs.Obs

(* Where index entries live: on the heap (the historical default), or in
   AEAD-sealed nodes on pager pages — the paper's Section 4 fix applied
   per node, letting datasets exceed RAM (one file per database). *)
type index_backing =
  | Memory
  | Paged of { path : string; page_size : int; cache_nodes : int }

type index_impl = Mem of Bptree.t | Paged_tree of Pbt.t

type change =
  | Created_table of Schema.t
  | Created_index of { table : string; col : string }
  | Created_range_index of { table : string; col : string; buckets : int }
  | Inserted of { table : string; row : int; values : Value.t list }
  | Updated of { table : string; row : int; col : string; value : Value.t }
  | Deleted of { table : string; row : int }

type t = {
  profile : profile;
  keyring : Keyring.t;
  order : int;
  rng : Rng.t;
  mu : Address.mu;
  tables : (string, Etable.t) Hashtbl.t;
  indexes : (string * string, index_impl) Hashtbl.t;
  range_indexes : (string * string, Rtree.t) Hashtbl.t;
  index_hists : (string * string, Secdb_query.Histogram.t) Hashtbl.t;
  row_counts : (string, int ref) Hashtbl.t;
      (* live rows per table — the planner's cardinality input, mirrored
         into the [db.rows{table}] gauge so `secdb stats` shows exactly
         what the cost model saw *)
  backing : index_backing;
  mutable index_pager : Secdb_storage.Pager.t option;
  mutable on_change : (change -> unit) option;
  mutable next_table_id : int;
  mutable next_index_id : int;
}

let create ?(seed = 1L) ?(order = 4) ?(index_backing = Memory) ?(first_table_id = 1)
    ?(first_index_id = 1000) ~master ~profile () =
  {
    profile;
    keyring = Keyring.open_session ~master;
    order;
    rng = Rng.create ~seed ();
    mu = Address.mu_sha1 ~width:16;
    tables = Hashtbl.create 8;
    indexes = Hashtbl.create 8;
    range_indexes = Hashtbl.create 8;
    index_hists = Hashtbl.create 8;
    row_counts = Hashtbl.create 8;
    backing = index_backing;
    index_pager = None;
    on_change = None;
    next_table_id = first_table_id;
    next_index_id = first_index_id;
  }

let set_on_change t f = t.on_change <- f
let notify t c = match t.on_change with Some f -> f c | None -> ()

let profile t = t.profile
let keyring t = t.keyring

let close t =
  (match t.index_pager with
  | Some p ->
      Hashtbl.iter
        (fun _ impl -> match impl with Paged_tree pt -> Pbt.flush pt | Mem _ -> ())
        t.indexes;
      Secdb_storage.Pager.close p;
      t.index_pager <- None
  | None -> ());
  Keyring.close_session t.keyring

(* The derived keys live inside scheme closures; ending the session models
   their secure removal, so every data operation checks the session first. *)
let ensure_open t = if not (Keyring.is_open t.keyring) then raise Keyring.Session_closed

(* --- per-table row statistics --------------------------------------------- *)

let publish_rows name n =
  if Obs.on () then Metrics.set (Metrics.gauge ~labels:[ ("table", name) ] "db.rows") n

let set_row_count t name n =
  (match Hashtbl.find_opt t.row_counts name with
  | Some r -> r := n
  | None -> Hashtbl.replace t.row_counts name (ref n));
  publish_rows name n

let bump_row_count t name delta =
  let r =
    match Hashtbl.find_opt t.row_counts name with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.replace t.row_counts name r;
        r
  in
  r := !r + delta;
  publish_rows name !r

(* loading and rotation build tables below the [insert] hook; recount *)
let recount_rows t name tbl =
  let live = ref 0 in
  for row = 0 to Etable.nrows tbl - 1 do
    if Etable.is_live tbl ~row then incr live
  done;
  set_row_count t name !live

let live_rows t ~table:name =
  match Hashtbl.find_opt t.row_counts name with Some r -> !r | None -> 0

(* the table-driven AES: same permutation as Secdb_cipher.Aes (tested), ~10x faster *)
let aes key = Secdb_cipher.Aes_fast.cipher ~key

let make_aead which ~key ~mac_key =
  match which with
  | Eax -> Secdb_aead.Eax.make (aes key)
  | Ocb -> Secdb_aead.Ocb.make (aes key)
  | Ccfb -> Secdb_aead.Ccfb.make (aes key)
  | Etm -> Secdb_aead.Compose.encrypt_then_mac ~cipher:(aes key) ~mac_key ()
  | Gcm -> Secdb_aead.Gcm.make (aes key)
  | Siv -> Secdb_aead.Siv.make (aes mac_key) (aes key)

let cell_scheme t ~table_id ~schema col =
  let key = Keyring.cell_key t.keyring ~table:table_id ~col in
  let e = Einst.cbc_zero_iv (aes key) in
  let append () = Secdb_schemes.Cell_append.make ~e ~mu:t.mu in
  match t.profile with
  | Elovici_append | Shmueli_improved | Shmueli_repaired_keys -> append ()
  | Elovici_xor ->
      (* the analysed scheme's own rule: the XOR form only where the data
         type carries enough redundancy — here, text columns whose encoding
         always reaches one cipher block; everything else falls back to the
         Append-Scheme (paper Sect. 2.2) *)
      if (Schema.col schema col).Schema.ty = Value.Ktext then
        Secdb_schemes.Cell_xor.make ~e ~mu:t.mu ~strip_zero_extension:true
          ~validate:(fun s ->
            match Value.decode s with
            | Ok (Value.Text v) -> not (String.contains v '\000')
            | Ok _ | Error _ -> false)
          ()
      else append ()
  | Fixed which ->
      let mac_key = Keyring.mac_key t.keyring ~table:table_id ~col in
      let aead = make_aead which ~key ~mac_key in
      let nonce = Secdb_aead.Nonce.of_rng t.rng ~size:aead.Secdb_aead.Aead.nonce_size in
      Secdb_schemes.Fixed_cell.make ~aead ~nonce ()
  | Siv_deterministic ->
      let mac_key = Keyring.mac_key t.keyring ~table:table_id ~col in
      let aead = make_aead Siv ~key ~mac_key in
      (* constant nonce + column-scoped associated data: deterministic
         authenticated encryption, searchable by exact equality; the
         deliberate trade is that within-column relocation is not caught at
         the cell layer (see Fixed_cell.make) *)
      Secdb_schemes.Fixed_cell.make
        ~ad_of:(fun addr ->
          Secdb_util.Xbytes.int_to_be_string ~width:8 addr.Address.table
          ^ Secdb_util.Xbytes.int_to_be_string ~width:8 addr.Address.col)
        ~aead
        ~nonce:(Secdb_aead.Nonce.fixed (String.make 16 '\000'))
        ()

let index_codec t ~table_id ~col_id =
  let key = Keyring.index_key t.keyring ~table:table_id ~col:col_id in
  let e = Einst.cbc_zero_iv (aes key) in
  match t.profile with
  | Elovici_append | Elovici_xor -> Secdb_schemes.Index3.codec ~e
  | Shmueli_improved ->
      Secdb_schemes.Index12.codec ~e ~mac_cipher:(aes key) ~rng:t.rng ~indexed_table:table_id
        ~indexed_col:col_id ()
  | Shmueli_repaired_keys ->
      let mac_key = Keyring.mac_key t.keyring ~table:table_id ~col:col_id in
      Secdb_schemes.Index12.codec ~e ~mac_cipher:(aes mac_key) ~rng:t.rng
        ~indexed_table:table_id ~indexed_col:col_id ()
  | Fixed which ->
      let mac_key = Keyring.mac_key t.keyring ~table:table_id ~col:col_id in
      let aead = make_aead which ~key ~mac_key in
      let nonce = Secdb_aead.Nonce.of_rng t.rng ~size:aead.Secdb_aead.Aead.nonce_size in
      Secdb_schemes.Fixed_index.codec ~aead ~nonce ~indexed_table:table_id
        ~indexed_col:col_id ()
  | Siv_deterministic ->
      let mac_key = Keyring.mac_key t.keyring ~table:table_id ~col:col_id in
      let aead = make_aead Siv ~key ~mac_key in
      Secdb_schemes.Fixed_index.codec ~aead
        ~nonce:(Secdb_aead.Nonce.fixed (String.make 16 '\000'))
        ~indexed_table:table_id ~indexed_col:col_id ()

let create_table t schema =
  ensure_open t;
  let name = schema.Schema.table_name in
  if Hashtbl.mem t.tables name then
    invalid_arg (Printf.sprintf "Encdb.create_table: table %s already exists" name);
  let id = t.next_table_id in
  t.next_table_id <- id + 1;
  Hashtbl.add t.tables name
    (Etable.create ~id schema ~scheme:(cell_scheme t ~table_id:id ~schema));
  set_row_count t name 0;
  notify t (Created_table schema)

let table t name =
  match Hashtbl.find_opt t.tables name with
  | Some tbl -> tbl
  | None -> raise Not_found

let table_names t =
  List.sort String.compare (Hashtbl.fold (fun name _ acc -> name :: acc) t.tables [])

let indexes_on t name =
  Hashtbl.fold
    (fun (tbl, col) tree acc -> if tbl = name then (col, tree) :: acc else acc)
    t.indexes []

let index_pager t =
  match t.index_pager with
  | Some p -> p
  | None -> (
      match t.backing with
      | Memory -> invalid_arg "Encdb: no paged index backing configured"
      | Paged { path; page_size; _ } ->
          let p = Secdb_storage.Pager.create ~path ~page_size () in
          t.index_pager <- Some p;
          p)

(* Node pages are sealed under keys derived per index, independent of the
   per-entry index keys, with the profile's AEAD (EAX for the legacy
   profiles, which predate AEAD at the cell layer). *)
let node_seal t ~table_id ~col_id ~tree_id =
  let key =
    Keyring.derive t.keyring ~label:(Printf.sprintf "pbt-node:%d:%d" table_id col_id)
      ~length:16
  in
  let mac_key =
    Keyring.derive t.keyring ~label:(Printf.sprintf "pbt-mac:%d:%d" table_id col_id)
      ~length:16
  in
  let which = match t.profile with Fixed w -> w | _ -> Eax in
  let aead = make_aead which ~key ~mac_key in
  let nonce = Secdb_aead.Nonce.of_rng t.rng ~size:aead.Secdb_aead.Aead.nonce_size in
  Pbt.aead_seal ~aead ~nonce ~tree_id

let create_index t ~table:name ~col =
  ensure_open t;
  let tbl = table t name in
  let schema = Etable.schema tbl in
  let col_id = Schema.col_index schema col in
  if Hashtbl.mem t.indexes (name, col) then
    invalid_arg (Printf.sprintf "Encdb.create_index: index on %s.%s already exists" name col);
  (* decrypt once, sort in the clear, bulk-load: one payload encoding per
     entry instead of O(log n) decodes per incremental insert (EXP19) *)
  let entries = ref [] in
  for row = Etable.nrows tbl - 1 downto 0 do
    if Etable.is_live tbl ~row then
      entries := (Etable.get_exn tbl ~row ~col:col_id, row) :: !entries
  done;
  let sorted = List.stable_sort (fun (a, _) (b, _) -> Value.compare a b) !entries in
  let tree_id = t.next_index_id in
  t.next_index_id <- tree_id + 1;
  let impl =
    match t.backing with
    | Memory ->
        let codec = index_codec t ~table_id:(Etable.id tbl) ~col_id in
        Mem (Bptree.bulk_load ~order:t.order ~id:tree_id ~codec sorted)
    | Paged { cache_nodes; _ } ->
        let seal = node_seal t ~table_id:(Etable.id tbl) ~col_id ~tree_id in
        let pt =
          Pbt.create ~pager:(index_pager t) ~seal ~order:t.order ~cache_nodes ~id:tree_id ()
        in
        (* sorted insertion preserves bulk_load's duplicate order *)
        List.iter (fun (v, row) -> Pbt.insert pt v ~table_row:row) sorted;
        Paged_tree pt
  in
  let hist = Secdb_query.Histogram.of_values (List.map fst sorted) in
  Hashtbl.replace t.index_hists (name, col) hist;
  Hashtbl.add t.indexes (name, col) impl;
  notify t (Created_index { table = name; col })

let has_index t ~table:name ~col = Hashtbl.mem t.indexes (name, col)

(* --- bucketized range indexes -------------------------------------------- *)

(* The ESEDS-style structure seals every entry under its own AEAD cell
   with the (tree id, sequence, bucket) triple as the authenticated
   address, so relocating an entry — the rank-shifting attack — fails to
   decrypt.  Keys are derived per index, independent of the cell and
   per-entry index keys; legacy profiles (which predate AEAD) get EAX,
   like the paged-node seal. *)
let range_sealer t ~table_id ~col_id ~tree_id =
  let key =
    Keyring.derive t.keyring ~label:(Printf.sprintf "rix-key:%d:%d" table_id col_id) ~length:16
  in
  let mac_key =
    Keyring.derive t.keyring ~label:(Printf.sprintf "rix-mac:%d:%d" table_id col_id) ~length:16
  in
  let which = match t.profile with Fixed w -> w | _ -> Eax in
  let aead = make_aead which ~key ~mac_key in
  let nonce = Secdb_aead.Nonce.of_rng t.rng ~size:aead.Secdb_aead.Aead.nonce_size in
  let scheme = Secdb_schemes.Fixed_cell.make ~aead ~nonce () in
  let addr ~seq ~bucket = Address.v ~table:tree_id ~row:seq ~col:bucket in
  {
    Rtree.sealer_name = scheme.Secdb_schemes.Cell_scheme.name;
    seal = (fun ~seq ~bucket p -> scheme.Secdb_schemes.Cell_scheme.encrypt (addr ~seq ~bucket) p);
    unseal =
      (fun ~seq ~bucket c -> scheme.Secdb_schemes.Cell_scheme.decrypt (addr ~seq ~bucket) c);
  }

let range_indexes_on t name =
  Hashtbl.fold
    (fun (tbl, col) tree acc -> if tbl = name then (col, tree) :: acc else acc)
    t.range_indexes []

let has_range_index t ~table:name ~col = Hashtbl.mem t.range_indexes (name, col)

let range_index_nbuckets t ~table:name ~col =
  Option.map Rtree.nbuckets (Hashtbl.find_opt t.range_indexes (name, col))

let range_index t ~table:name ~col =
  match Hashtbl.find_opt t.range_indexes (name, col) with
  | Some tree -> tree
  | None -> raise Not_found

let create_range_index t ~table:name ~col ?(buckets = 16) () =
  ensure_open t;
  let tbl = table t name in
  let schema = Etable.schema tbl in
  let col_id = Schema.col_index schema col in
  if Hashtbl.mem t.range_indexes (name, col) then
    invalid_arg
      (Printf.sprintf "Encdb.create_range_index: range index on %s.%s already exists" name col);
  if buckets < 1 then invalid_arg "Encdb.create_range_index: buckets must be >= 1";
  (* decrypt the column once; boundaries come from the data's quantiles so
     buckets stay balanced under skew (the leakage is the boundaries plus
     the per-bucket histogram, see DESIGN.md Sect. 13) *)
  let entries = ref [] in
  for row = Etable.nrows tbl - 1 downto 0 do
    if Etable.is_live tbl ~row then
      entries := (Etable.get_exn tbl ~row ~col:col_id, row) :: !entries
  done;
  let boundaries = Rtree.quantile_boundaries ~buckets (List.map fst !entries) in
  let tree_id = t.next_index_id in
  t.next_index_id <- tree_id + 1;
  let sealer = range_sealer t ~table_id:(Etable.id tbl) ~col_id ~tree_id in
  let tree = Rtree.create ~id:tree_id ~sealer ~boundaries () in
  List.iter (fun (v, row) -> Rtree.insert tree v ~table_row:row) !entries;
  if not (Hashtbl.mem t.index_hists (name, col)) then
    Hashtbl.replace t.index_hists (name, col)
      (Secdb_query.Histogram.of_values (List.map fst !entries));
  Hashtbl.add t.range_indexes (name, col) tree;
  notify t (Created_range_index { table = name; col; buckets })

let index t ~table:name ~col =
  match Hashtbl.find_opt t.indexes (name, col) with
  | Some (Mem tree) -> tree
  | Some (Paged_tree _) | None -> raise Not_found

let index_selectivity t ~table:name ~col ~lo ~hi =
  Option.map
    (fun h -> Secdb_query.Histogram.selectivity h ~lo ~hi)
    (Hashtbl.find_opt t.index_hists (name, col))

let hist_add t name col v =
  match Hashtbl.find_opt t.index_hists (name, col) with
  | Some h -> Secdb_query.Histogram.add h v
  | None -> ()

let hist_remove t name col v =
  match Hashtbl.find_opt t.index_hists (name, col) with
  | Some h -> Secdb_query.Histogram.remove h v
  | None -> ()

let impl_insert impl v ~table_row =
  match impl with
  | Mem tree -> Bptree.insert tree v ~table_row
  | Paged_tree pt -> Pbt.insert pt v ~table_row

let impl_delete impl v ~table_row =
  match impl with
  | Mem tree -> Bptree.delete tree v ~table_row
  | Paged_tree pt -> Pbt.delete pt v ~table_row

let insert t ~table:name values =
  ensure_open t;
  let tbl = table t name in
  let row = Etable.insert tbl values in
  List.iter
    (fun (col, impl) ->
      let col_id = Schema.col_index (Etable.schema tbl) col in
      let v = List.nth values col_id in
      hist_add t name col v;
      impl_insert impl v ~table_row:row)
    (indexes_on t name);
  List.iter
    (fun (col, rtree) ->
      let col_id = Schema.col_index (Etable.schema tbl) col in
      let v = List.nth values col_id in
      (* the histogram is shared per column; the exact index already fed it *)
      if not (Hashtbl.mem t.indexes (name, col)) then hist_add t name col v;
      Rtree.insert rtree v ~table_row:row)
    (range_indexes_on t name);
  bump_row_count t name 1;
  notify t (Inserted { table = name; row; values });
  row

let update t ~table:name ~row ~col value =
  ensure_open t;
  let tbl = table t name in
  let col_id = Schema.col_index (Etable.schema tbl) col in
  match Etable.get tbl ~row ~col:col_id with
  | Error e -> Error e
  | Ok old_value ->
      Etable.update tbl ~row ~col:col_id value;
      (match Hashtbl.find_opt t.indexes (name, col) with
      | Some impl ->
          ignore (impl_delete impl old_value ~table_row:row);
          impl_insert impl value ~table_row:row;
          hist_remove t name col old_value;
          hist_add t name col value
      | None -> ());
      (match Hashtbl.find_opt t.range_indexes (name, col) with
      | Some rtree ->
          ignore (Rtree.delete rtree old_value ~table_row:row);
          Rtree.insert rtree value ~table_row:row;
          if not (Hashtbl.mem t.indexes (name, col)) then begin
            hist_remove t name col old_value;
            hist_add t name col value
          end
      | None -> ());
      notify t (Updated { table = name; row; col; value });
      Ok ()

let delete_row t ~table:name ~row =
  ensure_open t;
  let tbl = table t name in
  let schema = Etable.schema tbl in
  (* collect the indexed values before tombstoning *)
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | (col, impl) :: rest -> (
        let col_id = Schema.col_index schema col in
        match Etable.get tbl ~row ~col:col_id with
        | Ok v -> collect (((col, impl), v) :: acc) rest
        | Error e -> Error e)
  in
  let collect_range acc =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | (col, rtree) :: rest -> (
          let col_id = Schema.col_index schema col in
          match Etable.get tbl ~row ~col:col_id with
          | Ok v -> go (((col, rtree), v) :: acc) rest
          | Error e -> Error e)
    in
    go acc (range_indexes_on t name)
  in
  match (collect [] (indexes_on t name), collect_range []) with
  | Error e, _ | _, Error e -> Error e
  | Ok entries, Ok range_entries ->
      Etable.delete_row tbl ~row;
      List.iter
        (fun ((col, impl), v) ->
          ignore (impl_delete impl v ~table_row:row);
          hist_remove t name col v)
        entries;
      List.iter
        (fun ((col, rtree), v) ->
          ignore (Rtree.delete rtree v ~table_row:row);
          if not (Hashtbl.mem t.indexes (name, col)) then hist_remove t name col v)
        range_entries;
      bump_row_count t name (-1);
      notify t (Deleted { table = name; row });
      Ok ()

(* --- paged persistence ---------------------------------------------------- *)

(* Snapshot serialization and the Merkle digest are defined over the
   in-memory node layout; a paged index is materialised through its own
   entry codec first (entries come back already sorted). *)
let mem_tree t (name, col) impl =
  match impl with
  | Mem tree -> tree
  | Paged_tree pt ->
      let tbl = table t name in
      let col_id = Schema.col_index (Etable.schema tbl) col in
      let codec = index_codec t ~table_id:(Etable.id tbl) ~col_id in
      Bptree.bulk_load ~order:t.order ~id:(Pbt.id pt) ~codec (Pbt.range pt ())

let save_paged t ~path ?(page_size = 4096) ?vfs () =
  ensure_open t;
  let tables = Hashtbl.fold (fun name tbl acc -> (name, tbl) :: acc) t.tables [] in
  let indexes =
    Hashtbl.fold (fun key impl acc -> (key, mem_tree t key impl) :: acc) t.indexes []
  in
  let be8 = Secdb_util.Xbytes.int_to_be_string ~width:8 in
  let pager = Secdb_storage.Pager.create ~path ~page_size ?vfs () in
  (* page 1, allocated first by construction, points at the directory blob *)
  let pointer_page = Secdb_storage.Pager.alloc pager in
  let blobs = Secdb_storage.Blob_store.attach pager in
  let entries =
    List.map
      (fun (name, tbl) ->
        let id = Secdb_storage.Blob_store.store blobs (Secdb_storage.Storage.encode_table tbl) in
        Secdb_db.Codec.frame [ "T"; name; ""; be8 id ])
      tables
    @ List.map
        (fun ((name, col), tree) ->
          let id =
            Secdb_storage.Blob_store.store blobs (Secdb_storage.Storage.encode_index tree)
          in
          Secdb_db.Codec.frame [ "I"; name; col; be8 id ])
        indexes
  in
  let directory =
    Secdb_db.Codec.frame
      (Secdb_storage.Storage.magic :: "paged-directory" :: profile_name t.profile :: entries)
  in
  let dir_id = Secdb_storage.Blob_store.store blobs directory in
  Secdb_storage.Pager.write pager pointer_page (be8 dir_id);
  Secdb_storage.Pager.close pager

let load_paged ?(seed = 3L) ?(order = 4) ?(cache_pages = 64) ?vfs ~master ~profile ~path () =
  let ( let* ) = Result.bind in
  let* pager = Secdb_storage.Pager.open_file ~path ~cache_pages ?vfs () in
  let blobs = Secdb_storage.Blob_store.attach pager in
  let blob_load id =
    Result.map_error Secdb_storage.Blob_store.chain_error_to_string
      (Secdb_storage.Blob_store.load blobs id)
  in
  let finish r =
    Secdb_storage.Pager.close pager;
    r
  in
  let dir_id = Secdb_util.Xbytes.be_string_to_int (String.sub (Secdb_storage.Pager.read pager 1) 0 8) in
  let* directory = blob_load dir_id in
  let* fields = Secdb_db.Codec.unframe directory in
  match fields with
  | m :: section :: prof :: entries ->
      if m <> Secdb_storage.Storage.magic then finish (Error "load_paged: bad magic")
      else if section <> "paged-directory" then finish (Error "load_paged: not a paged database")
      else if prof <> profile_name profile then
        finish
          (Error
             (Printf.sprintf "load_paged: database was saved under profile %s, not %s" prof
                (profile_name profile)))
      else begin
        let t = create ~seed ~order ~master ~profile () in
        let result =
          List.fold_left
            (fun acc entry ->
              let* () = acc in
              let* parts = Secdb_db.Codec.unframe entry in
              match parts with
              | [ "T"; name; _; id ] ->
                  let* data = blob_load (Secdb_util.Xbytes.be_string_to_int id) in
                  let* table_id, schema = Secdb_storage.Storage.peek_table data in
                  let* tbl =
                    Secdb_storage.Storage.decode_table ~scheme:(cell_scheme t ~table_id ~schema)
                      data
                  in
                  Hashtbl.add t.tables name tbl;
                  recount_rows t name tbl;
                  if table_id >= t.next_table_id then t.next_table_id <- table_id + 1;
                  Ok ()
              | [ "I"; name; col; id ] ->
                  let* tbl =
                    match Hashtbl.find_opt t.tables name with
                    | Some tbl -> Ok tbl
                    | None -> Error (Printf.sprintf "load_paged: index for unknown table %s" name)
                  in
                  let* col_id =
                    match Schema.col_index (Etable.schema tbl) col with
                    | c -> Ok c
                    | exception Not_found ->
                        Error (Printf.sprintf "load_paged: unknown column %s.%s" name col)
                  in
                  let codec = index_codec t ~table_id:(Etable.id tbl) ~col_id in
                  let* data = blob_load (Secdb_util.Xbytes.be_string_to_int id) in
                  let* tree = Secdb_storage.Storage.decode_index ~codec data in
                  let hist =
                    try
                      Secdb_query.Histogram.of_values (List.map fst (Bptree.range tree ()))
                    with Secdb_index.Bptree.Integrity _ -> Secdb_query.Histogram.create ()
                  in
                  Hashtbl.replace t.index_hists (name, col) hist;
                  Hashtbl.add t.indexes (name, col) (Mem tree);
                  if Secdb_index.Bptree.id tree >= t.next_index_id then
                    t.next_index_id <- Secdb_index.Bptree.id tree + 1;
                  Ok ()
              | _ -> Error "load_paged: malformed directory entry")
            (Ok ()) entries
        in
        finish (Result.map (fun () -> t) result)
      end
  | _ -> finish (Error "load_paged: malformed directory")

let digest t =
  let tables =
    Hashtbl.fold (fun name tbl acc -> (name, tbl) :: acc) t.tables []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let indexes =
    Hashtbl.fold (fun key impl acc -> (key, mem_tree t key impl) :: acc) t.indexes []
    |> List.sort (fun ((a, b), _) ((c, d), _) -> compare (a, b) (c, d))
  in
  let artefact_roots =
    List.map
      (fun (name, tbl) ->
        "T" ^ name ^ Secdb_storage.Merkle.root (Secdb_storage.Storage.table_leaves tbl))
      tables
    @ List.map
        (fun ((name, col), tree) ->
          "I" ^ name ^ "." ^ col
          ^ Secdb_storage.Merkle.root (Secdb_storage.Storage.index_leaves tree))
        indexes
  in
  Secdb_storage.Merkle.root artefact_roots

let rotate_master t ~new_master =
  ensure_open t;
  let fresh =
    create
      ~seed:(Int64.add 1L (Rng.next64 t.rng))
      ~order:t.order ~master:new_master ~profile:t.profile ()
  in
  (* tables: decrypt every live row under the old keys, re-encrypt under
     the new; tombstones and row numbers are preserved *)
  let names = Hashtbl.fold (fun name _ acc -> name :: acc) t.tables [] in
  List.iter
    (fun name ->
      let tbl = table t name in
      let schema = Etable.schema tbl in
      create_table fresh schema;
      let new_tbl = table fresh name in
      for row = 0 to Etable.nrows tbl - 1 do
        if Etable.is_live tbl ~row then begin
          let values =
            List.init (Schema.ncols schema) (fun col -> Etable.get_exn tbl ~row ~col)
          in
          ignore (Etable.insert new_tbl values)
        end
        else begin
          (* keep row numbering aligned: insert then tombstone *)
          let placeholder =
            List.init (Schema.ncols schema) (fun _ -> Value.Null)
          in
          let r = Etable.insert new_tbl placeholder in
          Etable.delete_row new_tbl ~row:r
        end
      done;
      recount_rows fresh name new_tbl)
    names;
  (* indexes: rebuilt from the re-encrypted tables *)
  Hashtbl.iter (fun (name, col) _ -> create_index fresh ~table:name ~col) t.indexes;
  Hashtbl.iter
    (fun (name, col) rtree ->
      create_range_index fresh ~table:name ~col ~buckets:(Rtree.nbuckets rtree) ())
    t.range_indexes;
  close t;
  fresh

let fetch_rows tbl rows =
  let schema = Etable.schema tbl in
  let ncols = Schema.ncols schema in
  let rec loop acc = function
    | [] -> Ok (List.rev acc)
    | row :: rest -> (
        let values = Array.make ncols Value.Null in
        let rec cols c =
          if c >= ncols then Ok ()
          else
            match Etable.get tbl ~row ~col:c with
            | Ok v ->
                values.(c) <- v;
                cols (c + 1)
            | Error e -> Error (Printf.sprintf "row %d: %s" row e)
        in
        match cols 0 with
        | Ok () -> loop ((row, values) :: acc) rest
        | Error e -> Error e)
  in
  loop [] rows

let select_range t ~table:name ~col ?(mode = Walker.Corrected) ?lo ?hi () =
  ensure_open t;
  let tbl = table t name in
  match Hashtbl.find_opt t.indexes (name, col) with
  | Some (Mem tree) -> (
      match Walker.range tree ~mode ?lo ?hi () with
      | Error e -> Error e
      | Ok answer -> fetch_rows tbl (List.map snd answer.Walker.results))
  | Some (Paged_tree pt) -> (
      (* whole-node AEAD: there is no unverified walk to choose; [mode]
         only distinguishes per-entry decode strategies *)
      match Pbt.range pt ?lo ?hi () with
      | entries -> fetch_rows tbl (List.map snd entries)
      | exception Pbt.Integrity e -> Error e)
  | None -> Error (Printf.sprintf "no index on %s.%s" name col)

let select_range_bucketed t ~table:name ~col ?lo ?hi () =
  ensure_open t;
  let tbl = table t name in
  match Hashtbl.find_opt t.range_indexes (name, col) with
  | None -> Error (Printf.sprintf "no range index on %s.%s" name col)
  | Some rtree -> (
      (* bucket overlap then exact in-tree filter; rows come back ascending,
         the same visible order as a full scan, so the planner may swap one
         for the other without changing result bytes *)
      match Rtree.query rtree ?lo ?hi () with
      | entries -> fetch_rows tbl (List.map snd entries)
      | exception Rtree.Integrity e -> Error e)

let select_eq t ~table:name ~col ?(mode = Walker.Corrected) probe =
  ensure_open t;
  let tbl = table t name in
  match Hashtbl.find_opt t.indexes (name, col) with
  | Some _ -> select_range t ~table:name ~col ~mode ~lo:probe ~hi:probe ()
  | None -> (
      (* decrypting full scan *)
      let col_id = Schema.col_index (Etable.schema tbl) col in
      match Etable.select_result tbl (fun values -> Value.equal values.(col_id) probe) with
      | Ok rows -> Ok rows
      | Error e -> Error e)

(* --- persistence -------------------------------------------------------- *)

let manifest_name = "secdb.manifest"

let save t ~dir =
  ensure_open t;
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let tables = Hashtbl.fold (fun name tbl acc -> (name, tbl) :: acc) t.tables [] in
  let indexes =
    Hashtbl.fold (fun key impl acc -> (key, mem_tree t key impl) :: acc) t.indexes []
  in
  let manifest =
    Secdb_db.Codec.frame
      (Secdb_storage.Storage.magic :: "manifest" :: profile_name t.profile
      :: Secdb_db.Codec.frame (List.map fst tables)
      :: List.map (fun ((tbl, col), _) -> Secdb_db.Codec.frame [ tbl; col ]) indexes)
  in
  let out path data =
    let oc = open_out_bin (Filename.concat dir path) in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc data)
  in
  out manifest_name manifest;
  List.iter
    (fun (name, tbl) ->
      Secdb_storage.Storage.save_table ~path:(Filename.concat dir (name ^ ".table")) tbl)
    tables;
  List.iter
    (fun ((tbl, col), tree) ->
      Secdb_storage.Storage.save_index
        ~path:(Filename.concat dir (Printf.sprintf "%s.%s.index" tbl col))
        tree)
    indexes

let load ?(seed = 2L) ?(order = 4) ~master ~profile ~dir () =
  let ( let* ) = Result.bind in
  let read path =
    let full = Filename.concat dir path in
    if not (Sys.file_exists full) then Error (Printf.sprintf "load: missing file %s" full)
    else
      let ic = open_in_bin full in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> Ok (really_input_string ic (in_channel_length ic)))
  in
  let* manifest = read manifest_name in
  let* fields = Secdb_db.Codec.unframe manifest in
  match fields with
  | m :: section :: prof :: table_names :: index_entries ->
      if m <> Secdb_storage.Storage.magic then Error "load: bad manifest magic"
      else if section <> "manifest" then Error "load: not a manifest"
      else if prof <> profile_name profile then
        Error
          (Printf.sprintf "load: database was saved under profile %s, not %s" prof
             (profile_name profile))
      else begin
        let t = create ~seed ~order ~master ~profile () in
        let* table_names = Secdb_db.Codec.unframe table_names in
        let* () =
          List.fold_left
            (fun acc name ->
              let* () = acc in
              let* data = read (name ^ ".table") in
              let* table_id, schema = Secdb_storage.Storage.peek_table data in
              let* tbl =
                Secdb_storage.Storage.decode_table
                  ~scheme:(cell_scheme t ~table_id ~schema) data
              in
              Hashtbl.add t.tables name tbl;
              recount_rows t name tbl;
              if table_id >= t.next_table_id then t.next_table_id <- table_id + 1;
              Ok ())
            (Ok ()) table_names
        in
        List.fold_left
          (fun acc entry ->
            let* () = acc in
            let* tbl_name, col = Secdb_db.Codec.unframe2 entry in
            let* tbl =
              match Hashtbl.find_opt t.tables tbl_name with
              | Some tbl -> Ok tbl
              | None -> Error (Printf.sprintf "load: index refers to unknown table %s" tbl_name)
            in
            let* col_id =
              match Schema.col_index (Etable.schema tbl) col with
              | c -> Ok c
              | exception Not_found ->
                  Error (Printf.sprintf "load: index refers to unknown column %s.%s" tbl_name col)
            in
            let codec = index_codec t ~table_id:(Etable.id tbl) ~col_id in
            let* data = read (Printf.sprintf "%s.%s.index" tbl_name col) in
            let* tree = Secdb_storage.Storage.decode_index ~codec data in
            (* a wrong key or tampered payload surfaces at query time, not
               here: statistics are best-effort *)
            let hist =
              try Secdb_query.Histogram.of_values (List.map fst (Bptree.range tree ()))
              with Bptree.Integrity _ -> Secdb_query.Histogram.create ()
            in
            Hashtbl.replace t.index_hists (tbl_name, col) hist;
            Hashtbl.add t.indexes (tbl_name, col) (Mem tree);
            if Secdb_index.Bptree.id tree >= t.next_index_id then
              t.next_index_id <- Secdb_index.Bptree.id tree + 1;
            Ok ())
          (Ok ()) index_entries
        |> Result.map (fun () -> t)
      end
  | _ -> Error "load: malformed manifest"

(** Session key management, after the trust model of [3]/[12] (paper
    Section 2.1): during a secure session the encryption keys are handed to
    the DBMS server and securely removed when the session ends.

    Per-purpose keys are derived from the master key by HMAC-SHA256 with
    distinct labels, so cell encryption, index encryption and MACs never
    share key material unless a caller deliberately asks for the paper's
    same-key counter-example. *)

type t

exception Session_closed

val open_session : master:string -> t
(** Derive a session keyring.  The master key may be any non-empty string
    (a password or a raw key); it is copied into a private mutable buffer
    so the session can zeroize it.  @raise Invalid_argument on empty
    input. *)

val open_session_bytes : master:bytes -> t
(** Like {!open_session} but {e adopts} the buffer: no copy is made, and
    {!close_session} zeroizes the caller's bytes in place.  Use this when
    the caller wants to verify — or rely on — the wipe.
    @raise Invalid_argument on empty input. *)

val close_session : t -> unit
(** Overwrite the master key material with zero bytes and drop it; any
    later use raises {!Session_closed}.  Models the "securely removed at
    the end of the session" step (same zeroize-on-free policy as the
    pager's {!Secdb_storage.Pager.free}).  Idempotent. *)

val is_open : t -> bool

val cell_key : t -> table:int -> col:int -> string
(** 16-byte AES key for a protected column's cells. *)

val index_key : t -> table:int -> col:int -> string
(** 16-byte AES key for the column's index entries. *)

val mac_key : t -> table:int -> col:int -> string
(** Independent 16-byte MAC key (the repaired-keys [12] variant and the
    encrypt-then-MAC AEAD need one). *)

val derive : t -> label:string -> length:int -> string
(** Generic labelled derivation for anything else (nonce seeds, test
    fixtures). @raise Invalid_argument if [length > 32]. *)

module Value = Secdb_db.Value
module Codec = Secdb_db.Codec
module Aead = Secdb_aead.Aead
module Xbytes = Secdb_util.Xbytes
module Metrics = Secdb_obs.Metrics
module Trace = Secdb_obs.Trace

let m_appends = Metrics.counter "oplog.appends"
let m_replayed = Metrics.counter "oplog.replayed"
let m_replay_failures = Metrics.counter "oplog.replay_failures"
let h_append = Metrics.histogram "oplog.append_seconds"
let h_replay = Metrics.histogram "oplog.replay_seconds"

type op =
  | Insert of { table : string; values : Value.t list }
  | Update of { table : string; row : int; col : string; value : Value.t }
  | Delete of { table : string; row : int }

let pp_op ppf = function
  | Insert { table; values } ->
      Fmt.pf ppf "INSERT %s (%a)" table (Fmt.list ~sep:Fmt.comma Value.pp) values
  | Update { table; row; col; value } ->
      Fmt.pf ppf "UPDATE %s row %d %s <- %a" table row col Value.pp value
  | Delete { table; row } -> Fmt.pf ppf "DELETE %s row %d" table row

let encode_op = function
  | Insert { table; values } -> Codec.frame ("ins" :: table :: List.map Value.encode values)
  | Update { table; row; col; value } ->
      Codec.frame [ "upd"; table; Xbytes.int_to_be_string ~width:8 row; col; Value.encode value ]
  | Delete { table; row } ->
      Codec.frame [ "del"; table; Xbytes.int_to_be_string ~width:8 row ]

let decode_op bytes =
  let ( let* ) = Result.bind in
  let* fields = Codec.unframe bytes in
  match fields with
  | "ins" :: table :: values ->
      let* values =
        List.fold_left
          (fun acc v ->
            let* acc = acc in
            let* value = Value.decode v in
            Ok (value :: acc))
          (Ok []) values
        |> Result.map List.rev
      in
      Ok (Insert { table; values })
  | [ "upd"; table; row; col; value ] ->
      let* value = Value.decode value in
      Ok (Update { table; row = Xbytes.be_string_to_int row; col; value })
  | [ "del"; table; row ] -> Ok (Delete { table; row = Xbytes.be_string_to_int row })
  | _ -> Error "oplog: unknown record shape"

(* --- writer ------------------------------------------------------------- *)

type writer = {
  oc : out_channel;
  aead : Aead.t;
  nonce : Secdb_aead.Nonce.t;
  mutable seq : int;
  mutable open_ : bool;
}

let create ~path ~aead ~nonce =
  { oc = open_out_bin path; aead; nonce; seq = 0; open_ = true }

let append w op =
  if not w.open_ then invalid_arg "Oplog.append: writer is closed";
  Trace.with_span ~hist:h_append "oplog.append" @@ fun () ->
  Metrics.incr m_appends;
  let seq = w.seq in
  let n = w.nonce () in
  let ad = Xbytes.int_to_be_string ~width:8 seq in
  let ct, tag = Aead.encrypt w.aead ~nonce:n ~ad (encode_op op) in
  let record = Codec.frame [ ad; n; ct; tag ] in
  output_string w.oc (Xbytes.int_to_be_string ~width:4 (String.length record));
  output_string w.oc record;
  w.seq <- seq + 1;
  seq

let count w = w.seq

let close w =
  if w.open_ then begin
    close_out w.oc;
    w.open_ <- false
  end

(* --- reader ------------------------------------------------------------- *)

let replay ~path ~aead =
  Trace.with_span ~hist:h_replay "oplog.replay" @@ fun () ->
  let ( let* ) = Result.bind in
  let data = In_channel.with_open_bin path In_channel.input_all in
  let len = String.length data in
  let rec loop off seq acc =
    if off = len then Ok (List.rev acc)
    else if off + 4 > len then Error "oplog: truncated record length"
    else begin
      let rlen = Xbytes.be_string_to_int (String.sub data off 4) in
      if off + 4 + rlen > len then Error "oplog: truncated record"
      else
        let record = String.sub data (off + 4) rlen in
        let* ad, n, ct, tag =
          match Codec.unframe record with
          | Ok [ a; b; c; d ] -> Ok (a, b, c, d)
          | Ok _ | Error _ -> Error "oplog: malformed record"
        in
        if ad <> Xbytes.int_to_be_string ~width:8 seq then
          Error (Printf.sprintf "oplog: record %d out of order or spliced" seq)
        else
          match Aead.decrypt aead ~nonce:n ~ad ~tag ct with
          | Error Aead.Invalid ->
              Error (Printf.sprintf "oplog: record %d failed authentication" seq)
          | Ok bytes ->
              let* op = decode_op bytes in
              loop (off + 4 + rlen) (seq + 1) ((seq, op) :: acc)
    end
  in
  let r = loop 0 0 [] in
  (match r with
  | Ok ops -> Metrics.add m_replayed (List.length ops)
  | Error _ -> Metrics.incr m_replay_failures);
  r

let apply db = function
  | Insert { table; values } -> (
      match Encdb.insert db ~table values with
      | (_ : int) -> Ok ()
      | exception Invalid_argument e -> Error e
      | exception Not_found -> Error ("oplog: unknown table " ^ table))
  | Update { table; row; col; value } -> Encdb.update db ~table ~row ~col value
  | Delete { table; row } -> Encdb.delete_row db ~table ~row

let replay_into db ~path ~aead =
  match replay ~path ~aead with
  | Error e -> Error e
  | Ok ops ->
      let rec run = function
        | [] -> Ok (List.length ops)
        | (_, op) :: rest -> ( match apply db op with Ok () -> run rest | Error e -> Error e)
      in
      run ops

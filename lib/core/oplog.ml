module Value = Secdb_db.Value
module Schema = Secdb_db.Schema
module Codec = Secdb_db.Codec
module Aead = Secdb_aead.Aead
module Xbytes = Secdb_util.Xbytes
module Crc32 = Secdb_util.Crc32
module Vfs = Secdb_storage.Vfs
module Storage = Secdb_storage.Storage
module Metrics = Secdb_obs.Metrics
module Trace = Secdb_obs.Trace

let m_appends = Metrics.counter "oplog.appends"
let m_syncs = Metrics.counter "oplog.syncs"
let m_replayed = Metrics.counter "oplog.replayed"
let m_replay_failures = Metrics.counter "oplog.replay_failures"
let h_append = Metrics.histogram "oplog.append_seconds"
let h_replay = Metrics.histogram "oplog.replay_seconds"

type op =
  | Create_table of Schema.t
  | Create_index of { table : string; col : string }
  | Create_range_index of { table : string; col : string; buckets : int }
  | Insert of { table : string; values : Value.t list }
  | Update of { table : string; row : int; col : string; value : Value.t }
  | Delete of { table : string; row : int }

let op_table = function
  | Create_table s -> s.Schema.table_name
  | Create_index { table; _ }
  | Create_range_index { table; _ }
  | Insert { table; _ }
  | Update { table; _ }
  | Delete { table; _ } -> table

let pp_op ppf = function
  | Create_table s -> Fmt.pf ppf "CREATE TABLE %s" s.Schema.table_name
  | Create_index { table; col } -> Fmt.pf ppf "CREATE INDEX %s.%s" table col
  | Create_range_index { table; col; buckets } ->
      Fmt.pf ppf "CREATE RANGE INDEX %s.%s (%d buckets)" table col buckets
  | Insert { table; values } ->
      Fmt.pf ppf "INSERT %s (%a)" table (Fmt.list ~sep:Fmt.comma Value.pp) values
  | Update { table; row; col; value } ->
      Fmt.pf ppf "UPDATE %s row %d %s <- %a" table row col Value.pp value
  | Delete { table; row } -> Fmt.pf ppf "DELETE %s row %d" table row

let encode_op = function
  | Create_table schema -> Codec.frame [ "ctb"; Storage.encode_schema schema ]
  | Create_index { table; col } -> Codec.frame [ "cix"; table; col ]
  | Create_range_index { table; col; buckets } ->
      Codec.frame [ "crx"; table; col; Xbytes.int_to_be_string ~width:8 buckets ]
  | Insert { table; values } -> Codec.frame ("ins" :: table :: List.map Value.encode values)
  | Update { table; row; col; value } ->
      Codec.frame [ "upd"; table; Xbytes.int_to_be_string ~width:8 row; col; Value.encode value ]
  | Delete { table; row } ->
      Codec.frame [ "del"; table; Xbytes.int_to_be_string ~width:8 row ]

let decode_op bytes =
  let ( let* ) = Result.bind in
  let* fields = Codec.unframe bytes in
  match fields with
  | [ "ctb"; schema ] ->
      let* schema = Storage.decode_schema schema in
      Ok (Create_table schema)
  | [ "cix"; table; col ] -> Ok (Create_index { table; col })
  | [ "crx"; table; col; buckets ] ->
      let buckets = Xbytes.be_string_to_int buckets in
      if buckets < 1 then Error "oplog: implausible bucket count"
      else Ok (Create_range_index { table; col; buckets })
  | "ins" :: table :: values ->
      let* values =
        List.fold_left
          (fun acc v ->
            let* acc = acc in
            let* value = Value.decode v in
            Ok (value :: acc))
          (Ok []) values
        |> Result.map List.rev
      in
      Ok (Insert { table; values })
  | [ "upd"; table; row; col; value ] ->
      let* value = Value.decode value in
      Ok (Update { table; row = Xbytes.be_string_to_int row; col; value })
  | [ "del"; table; row ] -> Ok (Delete { table; row = Xbytes.be_string_to_int row })
  | _ -> Error "oplog: unknown record shape"

(* --- record framing ------------------------------------------------------ *)

(* Record layout: [len:4][record][crc32(len ^ record):4].  The CRC is not a
   security feature — the AEAD tag inside [record] is — it distinguishes a
   torn tail (storage fault) from a forged record (adversary) and lets
   recovery stop cleanly without an AEAD pass over garbage. *)

let max_record_len = 1 lsl 26

type tail =
  | Complete
  | Torn_length of { off : int; have : int }
  | Torn_record of { seq : int; off : int; expect : int; have : int }
  | Bad_length of { seq : int; off : int; len : int }
  | Bad_crc of { seq : int; off : int }
  | Bad_record of { seq : int; off : int; reason : string }
  | Bad_auth of { seq : int; off : int }

let tail_to_string = function
  | Complete -> "oplog: clean tail"
  | Torn_length { off; have } ->
      Printf.sprintf "oplog: torn length field at offset %d (%d of 4 bytes)" off have
  | Torn_record { seq; off; expect; have } ->
      Printf.sprintf "oplog: record %d torn at offset %d (%d of %d bytes)" seq off have expect
  | Bad_length { seq; off; len } ->
      Printf.sprintf "oplog: record %d at offset %d has implausible length %d" seq off len
  | Bad_crc { seq; off } ->
      Printf.sprintf "oplog: record %d at offset %d failed its CRC" seq off
  | Bad_record { seq; off; reason } ->
      Printf.sprintf "oplog: record %d at offset %d malformed: %s" seq off reason
  | Bad_auth { seq; off } ->
      Printf.sprintf "oplog: record %d at offset %d failed authentication" seq off

(* Verify one sealed record against the sequence number it must sit at.
   Used by the replica side of log shipping: a record is only accepted into
   the local copy if it would also survive [recover] — CRC, frame, the
   sequence number bound as associated data, and the AEAD tag. *)
let verify_sealed ~aead ~seq sealed =
  let len = String.length sealed in
  if len < 8 then Error "oplog: sealed record too short"
  else
    let rlen = Xbytes.be_string_to_int (String.sub sealed 0 4) in
    if rlen <= 0 || rlen > max_record_len then Error "oplog: implausible record length"
    else if len <> 4 + rlen + 4 then Error "oplog: sealed record size mismatch"
    else if Crc32.update 0 sealed ~off:0 ~len:(4 + rlen) <> Xbytes.get_uint32_be sealed (4 + rlen)
    then Error "oplog: sealed record failed its CRC"
    else
      match Codec.unframe (String.sub sealed 4 rlen) with
      | Ok [ ad; n; ct; tag ] -> (
          if ad <> Xbytes.int_to_be_string ~width:8 seq then
            Error "oplog: sealed record out of order or spliced"
          else
            match Aead.decrypt aead ~nonce:n ~ad ~tag ct with
            | Error Aead.Invalid -> Error "oplog: sealed record failed authentication"
            | Ok bytes -> decode_op bytes)
      | Ok _ | Error _ -> Error "oplog: sealed record malformed"

(* --- writer ------------------------------------------------------------- *)

type sync_policy = Always | Every_n of int | Never

type writer = {
  vf : Vfs.file;
  aead : Aead.t;
  nonce : Secdb_aead.Nonce.t;
  policy : sync_policy;
  mutable seq : int;
  mutable pos : int; (* next record's byte offset *)
  mutable offs : int array; (* offs.(i) = byte offset of record i, for i < seq *)
  mutable durable : int; (* records covered by the last fsync *)
  mutable unsynced : int; (* appends not yet covered by an fsync *)
  mutable open_ : bool;
}

let ensure_cap w n =
  if Array.length w.offs < n then begin
    let cap = max 16 (max n (2 * Array.length w.offs)) in
    let a = Array.make cap 0 in
    Array.blit w.offs 0 a 0 w.seq;
    w.offs <- a
  end

(* Longest-valid-prefix parse.  Stops at the first record that fails any
   check: once one record is unparsable the sequence chain beyond it is
   unauthenticated, so nothing after it can be trusted anyway.  Also
   returns each record's byte offset and the end offset of the prefix so a
   resumed writer can seat itself exactly at the boundary. *)
let parse_ext ~aead data =
  let len = String.length data in
  let rec loop off seq acc offs =
    let stop tail = (List.rev acc, tail, List.rev offs, off) in
    if off = len then stop Complete
    else if off + 4 > len then stop (Torn_length { off; have = len - off })
    else
      let rlen = Xbytes.be_string_to_int (String.sub data off 4) in
      if rlen <= 0 || rlen > max_record_len then stop (Bad_length { seq; off; len = rlen })
      else if off + 4 + rlen + 4 > len then
        stop (Torn_record { seq; off; expect = rlen + 8; have = len - off })
      else
        let crc = Xbytes.get_uint32_be data (off + 4 + rlen) in
        if Crc32.update 0 data ~off ~len:(4 + rlen) <> crc then stop (Bad_crc { seq; off })
        else
          let record = String.sub data (off + 4) rlen in
          match Codec.unframe record with
          | Ok [ ad; n; ct; tag ] -> (
              if ad <> Xbytes.int_to_be_string ~width:8 seq then
                stop (Bad_record { seq; off; reason = "out of order or spliced" })
              else
                match Aead.decrypt aead ~nonce:n ~ad ~tag ct with
                | Error Aead.Invalid -> stop (Bad_auth { seq; off })
                | Ok bytes -> (
                    match decode_op bytes with
                    | Error e -> stop (Bad_record { seq; off; reason = e })
                    | Ok op -> loop (off + 8 + rlen) (seq + 1) ((seq, op) :: acc) (off :: offs)))
          | Ok _ | Error _ -> stop (Bad_record { seq; off; reason = "malformed frame" })
  in
  loop 0 0 [] []

let parse ~aead data =
  let ops, tail, _, _ = parse_ext ~aead data in
  (ops, tail)

let create ?(vfs = Vfs.unix) ?(sync = Always) ?(mode = `Trunc) ~path ~aead ~nonce () =
  (match sync with
  | Every_n n when n < 1 -> invalid_arg "Oplog.create: Every_n needs n >= 1"
  | _ -> ());
  let fresh vf =
    {
      vf;
      aead;
      nonce;
      policy = sync;
      seq = 0;
      pos = 0;
      offs = [||];
      durable = 0;
      unsynced = 0;
      open_ = true;
    }
  in
  match mode with
  | `Trunc -> fresh (vfs.Vfs.open_file ~path ~mode:`Trunc)
  | `Resume -> (
      match vfs.Vfs.open_file ~path ~mode:`Rw with
      | exception Vfs.Io_error _ ->
          (* no log yet: a resume of nothing is a fresh log *)
          fresh (vfs.Vfs.open_file ~path ~mode:`Trunc)
      | vf ->
          let size = vf.Vfs.size () in
          let buf = Bytes.create size in
          let got = if size = 0 then 0 else Vfs.really_pread vf ~pos:0 buf ~off:0 ~len:size in
          let data = Bytes.sub_string buf 0 got in
          let ops, _tail, offs, end_off = parse_ext ~aead data in
          (* seat the writer at the longest authenticated prefix; anything
             beyond it is a torn or corrupt tail that must not survive into
             the resumed history *)
          if end_off < size then vf.Vfs.truncate end_off;
          vf.Vfs.fsync ();
          let w = fresh vf in
          w.seq <- List.length ops;
          w.pos <- end_off;
          w.offs <- Array.of_list offs;
          w.durable <- w.seq;
          w)

let do_sync w =
  w.vf.Vfs.fsync ();
  w.unsynced <- 0;
  w.durable <- w.seq;
  Metrics.incr m_syncs

let sync w =
  if not w.open_ then invalid_arg "Oplog.sync: writer is closed";
  if w.unsynced > 0 then do_sync w

let seal w op =
  let seq = w.seq in
  let n = w.nonce () in
  let ad = Xbytes.int_to_be_string ~width:8 seq in
  let ct, tag = Aead.encrypt w.aead ~nonce:n ~ad (encode_op op) in
  let record = Codec.frame [ ad; n; ct; tag ] in
  let len4 = Xbytes.int_to_be_string ~width:4 (String.length record) in
  let crc = Crc32.string (len4 ^ record) in
  len4 ^ record ^ Xbytes.int_to_be_string ~width:4 crc

let write_record w full =
  let start = w.pos in
  (try Vfs.really_pwrite w.vf ~pos:start full
   with e ->
     (* an injected EIO/ENOSPC can leave a torn record; put the log back
        at the last record boundary so the failure is not also corruption *)
     (try w.vf.Vfs.truncate start with Vfs.Io_error _ | Vfs.Crashed _ -> ());
     raise e);
  ensure_cap w (w.seq + 1);
  w.offs.(w.seq) <- start;
  w.pos <- start + String.length full;
  w.seq <- w.seq + 1;
  w.unsynced <- w.unsynced + 1;
  match w.policy with
  | Always -> do_sync w
  | Every_n n -> if w.unsynced >= n then do_sync w
  | Never -> ()

let append w op =
  if not w.open_ then invalid_arg "Oplog.append: writer is closed";
  Trace.with_span ~hist:h_append "oplog.append" @@ fun () ->
  Metrics.incr m_appends;
  let seq = w.seq in
  write_record w (seal w op);
  seq

let append_sealed w sealed =
  if not w.open_ then invalid_arg "Oplog.append_sealed: writer is closed";
  match verify_sealed ~aead:w.aead ~seq:w.seq sealed with
  | Error _ as e -> e
  | Ok op ->
      Metrics.incr m_appends;
      write_record w sealed;
      Ok op

let count w = w.seq
let durable w = w.durable

let read_sealed w ~from ~max =
  if not w.open_ then invalid_arg "Oplog.read_sealed: writer is closed";
  if from < 0 || max < 0 then invalid_arg "Oplog.read_sealed: negative argument";
  (* only fsynced records ship: a record the primary could still lose in a
     crash must never outlive it on a replica, or the replica would stop
     being a prefix of the primary *)
  let upto = min w.durable (from + max) in
  let rec go i acc =
    if i >= upto then List.rev acc
    else
      let start = w.offs.(i) in
      let stop = if i + 1 < w.seq then w.offs.(i + 1) else w.pos in
      let buf = Bytes.create (stop - start) in
      let got = Vfs.really_pread w.vf ~pos:start buf ~off:0 ~len:(stop - start) in
      if got <> stop - start then List.rev acc
      else go (i + 1) ((i, Bytes.to_string buf) :: acc)
  in
  if from >= upto then [] else go from []

let close w =
  if w.open_ then begin
    (try sync w with Vfs.Crashed _ -> ());
    w.vf.Vfs.close ();
    w.open_ <- false
  end

(* --- reader ------------------------------------------------------------- *)

let read_log ?(vfs = Vfs.unix) path =
  match Vfs.read_all vfs ~path with
  | data -> Ok data
  | exception Vfs.Io_error { reason; _ } -> Error ("oplog: " ^ reason)

let replay ?vfs ~path ~aead () =
  Trace.with_span ~hist:h_replay "oplog.replay" @@ fun () ->
  let r =
    match read_log ?vfs path with
    | Error _ as e -> e
    | Ok data -> (
        match parse ~aead data with
        | ops, Complete -> Ok ops
        | _, tail -> Error (tail_to_string tail))
  in
  (match r with
  | Ok ops -> Metrics.add m_replayed (List.length ops)
  | Error _ -> Metrics.incr m_replay_failures);
  r

let recover ?vfs ~path ~aead () =
  Trace.with_span ~hist:h_replay "oplog.recover" @@ fun () ->
  match read_log ?vfs path with
  | Error _ as e -> e
  | Ok data ->
      let ops, tail = parse ~aead data in
      Metrics.add m_replayed (List.length ops);
      if tail <> Complete then Metrics.incr m_replay_failures;
      Ok (ops, tail)

let apply db = function
  | Create_table schema -> (
      match Encdb.create_table db schema with
      | () -> Ok ()
      | exception Invalid_argument e -> Error e)
  | Create_index { table; col } -> (
      match Encdb.create_index db ~table ~col with
      | () -> Ok ()
      | exception Invalid_argument e -> Error e
      | exception Not_found -> Error ("oplog: unknown table " ^ table))
  | Create_range_index { table; col; buckets } -> (
      match Encdb.create_range_index db ~table ~col ~buckets () with
      | () -> Ok ()
      | exception Invalid_argument e -> Error e
      | exception Not_found -> Error ("oplog: unknown table " ^ table))
  | Insert { table; values } -> (
      match Encdb.insert db ~table values with
      | (_ : int) -> Ok ()
      | exception Invalid_argument e -> Error e
      | exception Not_found -> Error ("oplog: unknown table " ^ table))
  | Update { table; row; col; value } -> Encdb.update db ~table ~row ~col value
  | Delete { table; row } -> Encdb.delete_row db ~table ~row

type replay_error = { applied : int; reason : string }

let replay_into db ?vfs ~path ~aead () =
  match replay ?vfs ~path ~aead () with
  | Error reason -> Error { applied = 0; reason }
  | Ok ops ->
      let rec run applied = function
        | [] -> Ok applied
        | (_, op) :: rest -> (
            match apply db op with
            | Ok () -> run (applied + 1) rest
            | Error reason -> Error { applied; reason })
      in
      run 0 ops

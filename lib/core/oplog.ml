module Value = Secdb_db.Value
module Codec = Secdb_db.Codec
module Aead = Secdb_aead.Aead
module Xbytes = Secdb_util.Xbytes
module Crc32 = Secdb_util.Crc32
module Vfs = Secdb_storage.Vfs
module Metrics = Secdb_obs.Metrics
module Trace = Secdb_obs.Trace

let m_appends = Metrics.counter "oplog.appends"
let m_syncs = Metrics.counter "oplog.syncs"
let m_replayed = Metrics.counter "oplog.replayed"
let m_replay_failures = Metrics.counter "oplog.replay_failures"
let h_append = Metrics.histogram "oplog.append_seconds"
let h_replay = Metrics.histogram "oplog.replay_seconds"

type op =
  | Insert of { table : string; values : Value.t list }
  | Update of { table : string; row : int; col : string; value : Value.t }
  | Delete of { table : string; row : int }

let pp_op ppf = function
  | Insert { table; values } ->
      Fmt.pf ppf "INSERT %s (%a)" table (Fmt.list ~sep:Fmt.comma Value.pp) values
  | Update { table; row; col; value } ->
      Fmt.pf ppf "UPDATE %s row %d %s <- %a" table row col Value.pp value
  | Delete { table; row } -> Fmt.pf ppf "DELETE %s row %d" table row

let encode_op = function
  | Insert { table; values } -> Codec.frame ("ins" :: table :: List.map Value.encode values)
  | Update { table; row; col; value } ->
      Codec.frame [ "upd"; table; Xbytes.int_to_be_string ~width:8 row; col; Value.encode value ]
  | Delete { table; row } ->
      Codec.frame [ "del"; table; Xbytes.int_to_be_string ~width:8 row ]

let decode_op bytes =
  let ( let* ) = Result.bind in
  let* fields = Codec.unframe bytes in
  match fields with
  | "ins" :: table :: values ->
      let* values =
        List.fold_left
          (fun acc v ->
            let* acc = acc in
            let* value = Value.decode v in
            Ok (value :: acc))
          (Ok []) values
        |> Result.map List.rev
      in
      Ok (Insert { table; values })
  | [ "upd"; table; row; col; value ] ->
      let* value = Value.decode value in
      Ok (Update { table; row = Xbytes.be_string_to_int row; col; value })
  | [ "del"; table; row ] -> Ok (Delete { table; row = Xbytes.be_string_to_int row })
  | _ -> Error "oplog: unknown record shape"

(* --- writer ------------------------------------------------------------- *)

type sync_policy = Always | Every_n of int | Never

type writer = {
  vf : Vfs.file;
  aead : Aead.t;
  nonce : Secdb_aead.Nonce.t;
  policy : sync_policy;
  mutable seq : int;
  mutable pos : int; (* next record's byte offset *)
  mutable unsynced : int; (* appends not yet covered by an fsync *)
  mutable open_ : bool;
}

let create ?(vfs = Vfs.unix) ?(sync = Always) ~path ~aead ~nonce () =
  (match sync with
  | Every_n n when n < 1 -> invalid_arg "Oplog.create: Every_n needs n >= 1"
  | _ -> ());
  {
    vf = vfs.Vfs.open_file ~path ~mode:`Trunc;
    aead;
    nonce;
    policy = sync;
    seq = 0;
    pos = 0;
    unsynced = 0;
    open_ = true;
  }

let do_sync w =
  w.vf.Vfs.fsync ();
  w.unsynced <- 0;
  Metrics.incr m_syncs

let sync w =
  if not w.open_ then invalid_arg "Oplog.sync: writer is closed";
  if w.unsynced > 0 then do_sync w

(* Record layout: [len:4][record][crc32(len ^ record):4].  The CRC is not a
   security feature — the AEAD tag inside [record] is — it distinguishes a
   torn tail (storage fault) from a forged record (adversary) and lets
   recovery stop cleanly without an AEAD pass over garbage. *)
let seal w op =
  let seq = w.seq in
  let n = w.nonce () in
  let ad = Xbytes.int_to_be_string ~width:8 seq in
  let ct, tag = Aead.encrypt w.aead ~nonce:n ~ad (encode_op op) in
  let record = Codec.frame [ ad; n; ct; tag ] in
  let len4 = Xbytes.int_to_be_string ~width:4 (String.length record) in
  let crc = Crc32.string (len4 ^ record) in
  len4 ^ record ^ Xbytes.int_to_be_string ~width:4 crc

let append w op =
  if not w.open_ then invalid_arg "Oplog.append: writer is closed";
  Trace.with_span ~hist:h_append "oplog.append" @@ fun () ->
  Metrics.incr m_appends;
  let full = seal w op in
  let start = w.pos in
  (try Vfs.really_pwrite w.vf ~pos:start full
   with e ->
     (* an injected EIO/ENOSPC can leave a torn record; put the log back
        at the last record boundary so the failure is not also corruption *)
     (try w.vf.Vfs.truncate start with Vfs.Io_error _ | Vfs.Crashed _ -> ());
     raise e);
  let seq = w.seq in
  w.pos <- start + String.length full;
  w.seq <- seq + 1;
  w.unsynced <- w.unsynced + 1;
  (match w.policy with
  | Always -> do_sync w
  | Every_n n -> if w.unsynced >= n then do_sync w
  | Never -> ());
  seq

let count w = w.seq

let close w =
  if w.open_ then begin
    (try sync w with Vfs.Crashed _ -> ());
    w.vf.Vfs.close ();
    w.open_ <- false
  end

(* --- reader ------------------------------------------------------------- *)

type tail =
  | Complete
  | Torn_length of { off : int; have : int }
  | Torn_record of { seq : int; off : int; expect : int; have : int }
  | Bad_length of { seq : int; off : int; len : int }
  | Bad_crc of { seq : int; off : int }
  | Bad_record of { seq : int; off : int; reason : string }
  | Bad_auth of { seq : int; off : int }

let tail_to_string = function
  | Complete -> "oplog: clean tail"
  | Torn_length { off; have } ->
      Printf.sprintf "oplog: torn length field at offset %d (%d of 4 bytes)" off have
  | Torn_record { seq; off; expect; have } ->
      Printf.sprintf "oplog: record %d torn at offset %d (%d of %d bytes)" seq off have expect
  | Bad_length { seq; off; len } ->
      Printf.sprintf "oplog: record %d at offset %d has implausible length %d" seq off len
  | Bad_crc { seq; off } ->
      Printf.sprintf "oplog: record %d at offset %d failed its CRC" seq off
  | Bad_record { seq; off; reason } ->
      Printf.sprintf "oplog: record %d at offset %d malformed: %s" seq off reason
  | Bad_auth { seq; off } ->
      Printf.sprintf "oplog: record %d at offset %d failed authentication" seq off

let max_record_len = 1 lsl 26

(* Longest-valid-prefix parse.  Stops at the first record that fails any
   check: once one record is unparsable the sequence chain beyond it is
   unauthenticated, so nothing after it can be trusted anyway. *)
let parse ~aead data =
  let len = String.length data in
  let rec loop off seq acc =
    if off = len then (List.rev acc, Complete)
    else if off + 4 > len then (List.rev acc, Torn_length { off; have = len - off })
    else
      let rlen = Xbytes.be_string_to_int (String.sub data off 4) in
      if rlen <= 0 || rlen > max_record_len then
        (List.rev acc, Bad_length { seq; off; len = rlen })
      else if off + 4 + rlen + 4 > len then
        (List.rev acc, Torn_record { seq; off; expect = rlen + 8; have = len - off })
      else
        let crc = Xbytes.get_uint32_be data (off + 4 + rlen) in
        if Crc32.update 0 data ~off ~len:(4 + rlen) <> crc then
          (List.rev acc, Bad_crc { seq; off })
        else
          let record = String.sub data (off + 4) rlen in
          match Codec.unframe record with
          | Ok [ ad; n; ct; tag ] -> (
              if ad <> Xbytes.int_to_be_string ~width:8 seq then
                (List.rev acc, Bad_record { seq; off; reason = "out of order or spliced" })
              else
                match Aead.decrypt aead ~nonce:n ~ad ~tag ct with
                | Error Aead.Invalid -> (List.rev acc, Bad_auth { seq; off })
                | Ok bytes -> (
                    match decode_op bytes with
                    | Error e -> (List.rev acc, Bad_record { seq; off; reason = e })
                    | Ok op -> loop (off + 8 + rlen) (seq + 1) ((seq, op) :: acc)))
          | Ok _ | Error _ ->
              (List.rev acc, Bad_record { seq; off; reason = "malformed frame" })
  in
  loop 0 0 []

let read_log ?(vfs = Vfs.unix) path =
  match Vfs.read_all vfs ~path with
  | data -> Ok data
  | exception Vfs.Io_error { reason; _ } -> Error ("oplog: " ^ reason)

let replay ?vfs ~path ~aead () =
  Trace.with_span ~hist:h_replay "oplog.replay" @@ fun () ->
  let r =
    match read_log ?vfs path with
    | Error _ as e -> e
    | Ok data -> (
        match parse ~aead data with
        | ops, Complete -> Ok ops
        | _, tail -> Error (tail_to_string tail))
  in
  (match r with
  | Ok ops -> Metrics.add m_replayed (List.length ops)
  | Error _ -> Metrics.incr m_replay_failures);
  r

let recover ?vfs ~path ~aead () =
  Trace.with_span ~hist:h_replay "oplog.recover" @@ fun () ->
  match read_log ?vfs path with
  | Error _ as e -> e
  | Ok data ->
      let ops, tail = parse ~aead data in
      Metrics.add m_replayed (List.length ops);
      if tail <> Complete then Metrics.incr m_replay_failures;
      Ok (ops, tail)

let apply db = function
  | Insert { table; values } -> (
      match Encdb.insert db ~table values with
      | (_ : int) -> Ok ()
      | exception Invalid_argument e -> Error e
      | exception Not_found -> Error ("oplog: unknown table " ^ table))
  | Update { table; row; col; value } -> Encdb.update db ~table ~row ~col value
  | Delete { table; row } -> Encdb.delete_row db ~table ~row

type replay_error = { applied : int; reason : string }

let replay_into db ?vfs ~path ~aead () =
  match replay ?vfs ~path ~aead () with
  | Error reason -> Error { applied = 0; reason }
  | Ok ops ->
      let rec run applied = function
        | [] -> Ok applied
        | (_, op) :: rest -> (
            match apply db op with
            | Ok () -> run (applied + 1) rest
            | Error reason -> Error { applied; reason })
      in
      run 0 ops

exception Session_closed

(* The master lives in a mutable buffer so [close_session] can overwrite
   the key material in place before dropping the reference — an immutable
   [string] would linger on the heap until the GC got around to it, which
   contradicts the "securely removed when the session ends" contract. *)
type t = { mutable master : Bytes.t option }

let open_session_bytes ~master =
  if Bytes.length master = 0 then invalid_arg "Keyring.open_session: empty master key";
  { master = Some master }

let open_session ~master =
  if master = "" then invalid_arg "Keyring.open_session: empty master key";
  { master = Some (Bytes.of_string master) }

let close_session t =
  match t.master with
  | None -> ()
  | Some b ->
      Bytes.fill b 0 (Bytes.length b) '\000';
      t.master <- None

let is_open t = t.master <> None

let derive t ~label ~length =
  if length > Secdb_hash.Sha256.digest_size then
    invalid_arg "Keyring.derive: length exceeds one HMAC-SHA256 output";
  match t.master with
  | None -> raise Session_closed
  | Some master ->
      (* [unsafe_to_string] avoids copying the master onto the heap again;
         HMAC only reads the key, and the alias never outlives this call. *)
      Secdb_util.Xbytes.take length
        (Secdb_hash.Hmac.mac Secdb_hash.Hmac.sha256
           ~key:(Bytes.unsafe_to_string master)
           label)

let scoped t purpose ~table ~col =
  derive t ~label:(Printf.sprintf "secdb/%s/t=%d/c=%d" purpose table col) ~length:16

let cell_key t ~table ~col = scoped t "cell" ~table ~col
let index_key t ~table ~col = scoped t "index" ~table ~col
let mac_key t ~table ~col = scoped t "mac" ~table ~col

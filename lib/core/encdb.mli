(** High-level encrypted database: the system of [3]/[12] and its fixed
    counterpart behind one API.

    An {!t} bundles a session keyring, a set of encrypted tables and their
    encrypted indexes.  The [profile] selects which of the paper's schemes
    protects cells and index entries:

    - [Elovici_append] — Append-Scheme cells (eq. 2) + the [3] index
      scheme (eqs. 4, 5), everything CBC with zero IV: the instantiation
      the paper's Section 3.1/3.2 attacks break.
    - [Elovici_xor] — XOR-Scheme cells (eq. 1) + [3] index.  Faithful to
      the paper including its lossiness: values whose encoding is shorter
      than µ's width (16 bytes) decrypt zero-extended.
    - [Shmueli_improved] — Append-Scheme cells + the improved [12] index
      (eq. 7) with E and OMAC under the {e same key}: Section 3.3's
      counter-example.
    - [Shmueli_repaired_keys] — [12] with an independent MAC key; immune
      to the same-key interaction but still pattern-matchable (EXP5).
    - [Fixed aead] — the paper's Section 4 AEAD constructions for both
      cells and index.

    All profiles expose the same query API, so the experiments can measure
    identical workloads across them. *)

type fixed_aead = Eax | Ocb | Ccfb | Etm | Gcm | Siv

type profile =
  | Elovici_append
  | Elovici_xor
  | Shmueli_improved
  | Shmueli_repaired_keys
  | Fixed of fixed_aead
  | Siv_deterministic
      (** AES-SIV with a constant nonce: {e deterministic} authenticated
          encryption.  Equal values in a column produce equal stored cells —
          the analysed scheme's searchability property — while forgery,
          relocation and prefix pattern matching all still fail.  The
          principled answer to the paper's determinism assumption, measured
          by experiment EXP15. *)

val profile_name : profile -> string

val all_profiles : profile list

type t

(** Where index entries live.  [Memory] is the historical heap tree;
    [Paged] puts every index of this database into one
    {!Secdb_storage.Paged_bptree} file at [path] — nodes AEAD-sealed with
    their page address as associated data, an LRU of [cache_nodes]
    decoded nodes per index, datasets bounded by disk instead of RAM. *)
type index_backing =
  | Memory
  | Paged of { path : string; page_size : int; cache_nodes : int }

(** One applied mutation, as observed through {!set_on_change} — enough
    to replay the database's logical state (the serving layer folds these
    into lock-free read snapshots). *)
type change =
  | Created_table of Secdb_db.Schema.t
  | Created_index of { table : string; col : string }
  | Created_range_index of { table : string; col : string; buckets : int }
      (** [buckets] rides along so a replica rebuilding from the change
          stream partitions the range index identically. *)
  | Inserted of { table : string; row : int; values : Secdb_db.Value.t list }
  | Updated of { table : string; row : int; col : string; value : Secdb_db.Value.t }
  | Deleted of { table : string; row : int }

val create :
  ?seed:int64 ->
  ?order:int ->
  ?index_backing:index_backing ->
  ?first_table_id:int ->
  ?first_index_id:int ->
  master:string ->
  profile:profile ->
  unit ->
  t
(** [seed] drives every pseudo-random choice (nonces, the random numbers a)
    for reproducibility; [order] is the B⁺-tree order (default 4).
    [index_backing] defaults to [Memory].  [first_table_id] /
    [first_index_id] start the id counters (defaults 1 and 1000) — shards
    of one logical database use disjoint ranges so derived keys and
    ciphertext addresses never collide across shards. *)

val set_on_change : t -> (change -> unit) option -> unit
(** Install (or clear) a hook fired after every successful mutation, in
    apply order.  No hook, no overhead. *)

val profile : t -> profile
val keyring : t -> Keyring.t

val close : t -> unit
(** End the secure session: wipes keys; subsequent cryptographic operations
    raise {!Keyring.Session_closed}. *)

val create_table : t -> Secdb_db.Schema.t -> unit
(** Register a table under its schema's name.
    @raise Invalid_argument on duplicate names. *)

val table : t -> string -> Secdb_query.Encrypted_table.t
(** @raise Not_found for unknown tables. *)

val table_names : t -> string list
(** All table names, sorted — what a serving layer enumerates to prime its
    read snapshots. *)

val live_rows : t -> table:string -> int
(** Live (non-tombstoned) row count, maintained incrementally on every
    insert and delete and recounted on load — the SQL cost model's
    cardinality input.  Mirrored into the [db.rows{table}] gauge while
    {!Secdb_obs.Obs.on}, so [secdb stats] shows what the planner saw.
    [0] for unknown tables. *)

val create_index : t -> table:string -> col:string -> unit
(** Build an encrypted index over an (encrypted) column, inserting all
    existing rows.  Later {!insert}s maintain it. *)

val has_index : t -> table:string -> col:string -> bool
(** Whether the column has an index under either backing — what the SQL
    planner consults. *)

val index : t -> table:string -> col:string -> Secdb_index.Bptree.t
(** The in-memory tree behind a [Memory]-backed index.
    @raise Not_found if no such index exists or it is paged. *)

val index_selectivity :
  t ->
  table:string ->
  col:string ->
  lo:Secdb_db.Value.t option ->
  hi:Secdb_db.Value.t option ->
  float option
(** Estimated fraction of the column's values inside the inclusive range,
    from a per-index {!Secdb_query.Histogram} maintained on every mutation
    (rebuilt by decryption on {!load}).  [None] if the column has no
    index.  Consulted by the SQL planner. *)

(** {2 Bucketized range indexes}

    The ESEDS-style structure of {!Secdb_index.Range_tree}: plaintext
    bucket boundaries over AEAD-sealed entries, the deliberate trade of
    bucket-granular order leakage for sub-scan range queries.  Unlike the
    exact B⁺-tree index (whose node structure reveals the full plaintext
    order to storage), the leakage here is capped by the bucket count —
    {!Secdb_attacks.Range_leak} measures it and CI pins the bound.  Range
    indexes live in memory only; they are not persisted by {!save} /
    {!save_paged} and must be re-created after {!load}. *)

val create_range_index : t -> table:string -> col:string -> ?buckets:int -> unit -> unit
(** Build a bucketized range index over a column: decrypt the column once,
    cut the domain at the data's quantiles (default 16 buckets), seal every
    (value, row) entry into its bucket.  Later mutations maintain it.
    @raise Invalid_argument on a duplicate range index or [buckets < 1]. *)

val has_range_index : t -> table:string -> col:string -> bool

val range_index_nbuckets : t -> table:string -> col:string -> int option
(** Bucket count of the column's range index — the planner's leakage/cost
    datum, surfaced by EXPLAIN. *)

val range_index : t -> table:string -> col:string -> Secdb_index.Range_tree.t
(** The structure itself, exposed for the attack bench and tests.
    @raise Not_found if no range index exists. *)

val select_range_bucketed :
  t ->
  table:string ->
  col:string ->
  ?lo:Secdb_db.Value.t ->
  ?hi:Secdb_db.Value.t ->
  unit ->
  ((int * Secdb_db.Value.t array) list, string) result
(** Inclusive range query through the bucketized index: unseal the
    overlapping buckets, filter exactly, fetch matching rows (ascending
    row order — a full scan's visible order, so the SQL planner can use
    either without changing result bytes).  [Error] on integrity failure
    or when the column has no range index. *)

val insert : t -> table:string -> Secdb_db.Value.t list -> int
(** Insert a row, updating all indexes on the table; returns the row. *)

val update :
  t -> table:string -> row:int -> col:string -> Secdb_db.Value.t -> (unit, string) result
(** Re-encrypt one cell (fresh nonce under the fixed profiles) and maintain
    any index on the column.  [Error] if the stored cell fails integrity
    when reading the old value. *)

val delete_row : t -> table:string -> row:int -> (unit, string) result
(** Tombstone a row and remove its entries from every index.  Row numbers
    are never reused — the schemes bind ciphertexts to (t, r, c), so
    compaction would force a full re-encryption (see
    {!Secdb_query.Encrypted_table.delete_row}). *)

val save_paged : t -> path:string -> ?page_size:int -> ?vfs:Secdb_storage.Vfs.t -> unit -> unit
(** Persist the whole database into a single {!Secdb_storage.Pager} file:
    a directory blob plus one blob per table and per index.  Same contract
    as {!save}, different storage system. *)

val load_paged :
  ?seed:int64 ->
  ?order:int ->
  ?cache_pages:int ->
  ?vfs:Secdb_storage.Vfs.t ->
  master:string ->
  profile:profile ->
  path:string ->
  unit ->
  (t, string) result

val digest : t -> string
(** Constant-size Merkle anchor over the complete stored representation —
    every row (tombstones included) of every table and every node of every
    index.  Per-cell AEAD cannot detect suppression of whole rows or a
    rollback to an older snapshot (experiment EXP22); keeping this digest
    out of band (with the master key) closes that gap: recompute after
    {!load} and compare. *)

val rotate_master : t -> new_master:string -> t
(** Key rotation: decrypt every cell and index entry under the current
    session and re-encrypt everything under keys derived from
    [new_master], returning a new session over the rotated data.  The old
    session is closed.  @raise Failure if any stored data fails integrity
    (rotation must not silently launder tampered data). *)

val select_eq :
  t ->
  table:string ->
  col:string ->
  ?mode:Secdb_query.Walker.mode ->
  Secdb_db.Value.t ->
  ((int * Secdb_db.Value.t array) list, string) result
(** Equality query.  Uses the column's encrypted index when one exists
    (through {!Secdb_query.Walker}, honouring [mode], default [Corrected]),
    otherwise a decrypting full scan.  Matching rows are returned fully
    decrypted; [Error] reports integrity failures. *)

val select_range :
  t ->
  table:string ->
  col:string ->
  ?mode:Secdb_query.Walker.mode ->
  ?lo:Secdb_db.Value.t ->
  ?hi:Secdb_db.Value.t ->
  unit ->
  ((int * Secdb_db.Value.t array) list, string) result
(** Inclusive range query; requires an index on the column. *)

(** {2 Persistence}

    The database's stored representation — clear structure, encrypted
    payloads, no keys — written through {!Secdb_storage.Storage}.  This is
    the artefact of the paper's threat model: copying the directory is the
    storage adversary's read access, editing it their write access. *)

val save : t -> dir:string -> unit
(** Write a manifest plus one file per table and per index into [dir]
    (created if missing).  @raise Sys_error on I/O failure. *)

val load :
  ?seed:int64 ->
  ?order:int ->
  master:string ->
  profile:profile ->
  dir:string ->
  unit ->
  (t, string) result
(** Reopen a saved database with a fresh session.  [master] and [profile]
    must match the saving session or every decryption will fail (there is
    deliberately no way to tell a wrong key from tampered data).  Pass a
    [seed] not used by any earlier session over the same data: it drives
    nonce generation, and the fixed schemes need fresh nonces for future
    writes. *)

(** Encrypted, replay-protected, crash-recoverable operation log.

    The schemes protect data {e at rest}; a deployment also ships changes —
    backups, replication, audit.  This module appends each mutation as an
    AEAD record whose associated data is its sequence number, so records
    cannot be reordered, spliced from another log, or modified; together
    with the out-of-band record count (keep it with the master key, like
    the {!Encdb.digest} anchor) truncation is caught too.

    Durability is explicit: every byte goes through a {!Secdb_storage.Vfs}
    backend, each record carries a CRC-32 trailer
    ([len:4][record][crc:4]), and a {!sync_policy} decides when appends
    are fsynced.  After a crash, {!recover} authenticates the longest
    valid prefix and says {e why} the tail ends ({!tail}) instead of
    rejecting the whole log; {!replay} remains the strict all-or-nothing
    verifier for adversarial settings.

    Replication rides the same sealed records: a primary streams them raw
    with {!read_sealed} and a replica re-verifies and stores them verbatim
    with {!append_sealed}, so a replica's log is a byte-identical
    authenticated prefix of the primary's — recovery on either end is the
    same {!recover} code path. *)

type op =
  | Create_table of Secdb_db.Schema.t
  | Create_index of { table : string; col : string }
  | Create_range_index of { table : string; col : string; buckets : int }
  | Insert of { table : string; values : Secdb_db.Value.t list }
  | Update of { table : string; row : int; col : string; value : Secdb_db.Value.t }
  | Delete of { table : string; row : int }

val op_table : op -> string
(** The table an operation addresses — the shard-routing key, so a replica
    applies each record to the same shard the primary did. *)

val pp_op : Format.formatter -> op -> unit

(** {2 Writing} *)

type sync_policy =
  | Always  (** fsync after every append: an acked append survives any crash *)
  | Every_n of int  (** fsync every [n] appends: bounded loss window *)
  | Never  (** fsync only at {!sync}/{!close}: fastest, crash loses the tail *)

type writer

val create :
  ?vfs:Secdb_storage.Vfs.t ->
  ?sync:sync_policy ->
  ?mode:[ `Trunc | `Resume ] ->
  path:string ->
  aead:Secdb_aead.Aead.t ->
  nonce:Secdb_aead.Nonce.t ->
  unit ->
  writer
(** Open a log for appending.  [sync] defaults to [Always].

    [mode] defaults to [`Trunc]: truncate and start at sequence 0.
    [`Resume] re-opens an existing log (creating it when missing), parses
    the longest authenticated prefix exactly as {!recover} would, truncates
    any torn or corrupt tail, fsyncs, and continues appending at the
    recovered sequence number and byte offset — a restarted primary keeps
    its history instead of silently wiping it.

    [nonce] must never repeat a value used with the same [aead] key by an
    earlier incarnation of the log: resumed records keep the nonces they
    were sealed with, so a resuming caller needs a fresh stream (e.g. a
    random per-boot prefix plus a counter), not a counter restarted at 0. *)

val append : writer -> op -> int
(** Seal and append one operation; returns its sequence number.  Honors
    the writer's {!sync_policy}.  On an I/O error
    ({!Secdb_storage.Vfs.Io_error}) the log is truncated back to the last
    record boundary before the exception propagates, so a failed append
    never leaves a torn record behind a live writer. *)

val append_sealed : writer -> string -> (op, string) result
(** Append one already-sealed record, verbatim.  The record is verified
    exactly as {!recover} would — CRC, frame shape, sequence number bound
    as associated data (it must equal this writer's next sequence), and
    the AEAD tag — before any byte is written, so a replica's log only
    ever contains records that authenticate at their position.  Returns
    the decoded operation so the caller can apply it.  Mixing
    [append_sealed] with {!append} on one writer is not meaningful: a
    replica copies, a primary seals. *)

val verify_sealed :
  aead:Secdb_aead.Aead.t -> seq:int -> string -> (op, string) result
(** The verification half of {!append_sealed} without the write — for
    consumers that apply shipped records without keeping a local copy. *)

val sync : writer -> unit
(** Fsync now; after it returns, every acked append survives a crash. *)

val count : writer -> int
(** Appended records, including any not yet fsynced. *)

val durable : writer -> int
(** Records covered by the last fsync — the only ones {!read_sealed}
    ships, so a crash of this writer can never make a consumer hold
    records the writer itself lost. *)

val read_sealed : writer -> from:int -> max:int -> (int * string) list
(** Raw sealed records [from, min (durable w) (from + max)), each with its
    sequence number, read back from the log file.  Feeds
    {!append_sealed} on the other end of a replication stream. *)

val close : writer -> unit
(** Sync, then release the file. *)

(** {2 Reading} *)

type tail =
  | Complete  (** the log ends exactly at a record boundary *)
  | Torn_length of { off : int; have : int }
      (** fewer than 4 bytes of length field at the tail *)
  | Torn_record of { seq : int; off : int; expect : int; have : int }
      (** record [seq] is cut short (classic torn write) *)
  | Bad_length of { seq : int; off : int; len : int }
      (** implausible length field (zeroed or garbage sector) *)
  | Bad_crc of { seq : int; off : int }  (** storage corruption inside the record *)
  | Bad_record of { seq : int; off : int; reason : string }
      (** frame/decode failure, or out-of-order sequence (splice) *)
  | Bad_auth of { seq : int; off : int }
      (** CRC fine but AEAD rejects: adversarial modification *)

val tail_to_string : tail -> string

val replay :
  ?vfs:Secdb_storage.Vfs.t ->
  path:string ->
  aead:Secdb_aead.Aead.t ->
  unit ->
  ((int * op) list, string) result
(** Read, verify and decode the whole log, strictly: any torn, modified,
    reordered or foreign record fails the whole replay.  A truncated
    {e tail} at a record boundary parses as a shorter valid log — compare
    the length against the out-of-band count. *)

val recover :
  ?vfs:Secdb_storage.Vfs.t ->
  path:string ->
  aead:Secdb_aead.Aead.t ->
  unit ->
  ((int * op) list * tail, string) result
(** Crash recovery: the longest prefix of records that parse, pass their
    CRC and authenticate, together with the diagnosis of why the log ends
    there.  [Error] only when the file itself cannot be read. *)

val apply : Encdb.t -> op -> (unit, string) result
(** Apply one operation to a live session. *)

type replay_error = { applied : int; reason : string }
(** A failed replay: how many operations were applied before the failure
    (0 when verification itself failed), and why. *)

val replay_into :
  Encdb.t ->
  ?vfs:Secdb_storage.Vfs.t ->
  path:string ->
  aead:Secdb_aead.Aead.t ->
  unit ->
  (int, replay_error) result
(** Verify and apply a whole log; returns the number of operations
    applied.  On failure the count of already-applied operations is
    reported, not discarded. *)

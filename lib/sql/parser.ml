module Value = Secdb_db.Value
open Lexer

type state = { mutable toks : token list }

exception Syntax of string

let fail fmt = Printf.ksprintf (fun s -> raise (Syntax s)) fmt
let peek st = match st.toks with [] -> Eof | t :: _ -> t

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let next st =
  let t = peek st in
  advance st;
  t

let expect_kw st kw =
  match next st with
  | Kw k when k = kw -> ()
  | t -> fail "expected %s, got %s" kw (Fmt.str "%a" pp_token t)

let expect_sym st sym =
  match next st with
  | Sym s when s = sym -> ()
  | t -> fail "expected '%s', got %s" sym (Fmt.str "%a" pp_token t)

let expect_ident st what =
  match next st with
  | Ident s -> s
  | t -> fail "expected %s, got %s" what (Fmt.str "%a" pp_token t)

let accept_kw st kw =
  match peek st with
  | Kw k when k = kw ->
      advance st;
      true
  | _ -> false

let accept_sym st sym =
  match peek st with
  | Sym s when s = sym ->
      advance st;
      true
  | _ -> false

let literal st =
  match next st with
  | Int i -> Value.Int i
  | Str s -> Value.Text s
  | Blob b -> Value.Bytes b
  | Kw "TRUE" -> Value.Bool true
  | Kw "FALSE" -> Value.Bool false
  | Kw "NULL" -> Value.Null
  | t -> fail "expected a literal, got %s" (Fmt.str "%a" pp_token t)

let operand st =
  match peek st with
  | Ident s ->
      advance st;
      Ast.Col s
  | _ -> Ast.Lit (literal st)

let cmp_of_sym = function
  | "=" -> Some Ast.Eq
  | "!=" -> Some Ast.Ne
  | "<" -> Some Ast.Lt
  | "<=" -> Some Ast.Le
  | ">" -> Some Ast.Gt
  | ">=" -> Some Ast.Ge
  | _ -> None

let rec expr st = expr_or st

and expr_or st =
  let left = expr_and st in
  if accept_kw st "OR" then Ast.Or (left, expr_or st) else left

and expr_and st =
  let left = expr_not st in
  if accept_kw st "AND" then Ast.And (left, expr_and st) else left

and expr_not st = if accept_kw st "NOT" then Ast.Not (expr_not st) else atom st

and atom st =
  if accept_sym st "(" then begin
    let e = expr st in
    expect_sym st ")";
    e
  end
  else begin
    let left = operand st in
    match peek st with
    | Sym s when cmp_of_sym s <> None ->
        advance st;
        Ast.Cmp (Option.get (cmp_of_sym s), left, operand st)
    | Kw "BETWEEN" ->
        advance st;
        let lo = operand st in
        expect_kw st "AND";
        let hi = operand st in
        Ast.Between (left, lo, hi)
    | t -> fail "expected a comparison, got %s" (Fmt.str "%a" pp_token t)
  end

let agg_of_kw = function
  | "COUNT" -> Some Ast.Count
  | "SUM" -> Some Ast.Sum
  | "MIN" -> Some Ast.Min
  | "MAX" -> Some Ast.Max
  | "AVG" -> Some Ast.Avg
  | _ -> None

let sel_item st =
  match peek st with
  | Kw k when agg_of_kw k <> None ->
      advance st;
      let fn = Option.get (agg_of_kw k) in
      expect_sym st "(";
      let col =
        if accept_sym st "*" then
          if fn = Ast.Count then None else fail "%s requires a column, not *" k
        else Some (expect_ident st "a column name")
      in
      expect_sym st ")";
      Ast.Aggregate (fn, col)
  | _ -> Ast.Field (expect_ident st "a column name")

let select st =
  expect_kw st "SELECT";
  let items =
    if accept_sym st "*" then None
    else begin
      let rec loop acc =
        let item = sel_item st in
        if accept_sym st "," then loop (item :: acc) else List.rev (item :: acc)
      in
      Some (loop [])
    end
  in
  expect_kw st "FROM";
  let table = expect_ident st "a table name" in
  let join =
    if accept_kw st "JOIN" then begin
      let jtable = expect_ident st "a table name" in
      expect_kw st "ON";
      let on_left = expect_ident st "a column name" in
      expect_sym st "=";
      let on_right = expect_ident st "a column name" in
      Some { Ast.jtable; on_left; on_right }
    end
    else None
  in
  let where = if accept_kw st "WHERE" then Some (expr st) else None in
  let group_by =
    if accept_kw st "GROUP" then begin
      expect_kw st "BY";
      Some (expect_ident st "a column name")
    end
    else None
  in
  let order_by =
    if accept_kw st "ORDER" then begin
      expect_kw st "BY";
      let c = expect_ident st "a column name" in
      let dir = if accept_kw st "DESC" then Ast.Desc else (ignore (accept_kw st "ASC"); Ast.Asc) in
      Some (c, dir)
    end
    else None
  in
  let limit =
    if accept_kw st "LIMIT" then
      match next st with
      | Int i when i >= 0L -> Some (Int64.to_int i)
      | t -> fail "expected a non-negative LIMIT, got %s" (Fmt.str "%a" pp_token t)
    else None
  in
  { Ast.items; table; join; where; group_by; order_by; limit }

let column_def st =
  let col_name = expect_ident st "a column name" in
  let col_type =
    match next st with
    | Kw "INT" -> Value.Kint
    | Kw "TEXT" -> Value.Ktext
    | Kw "BYTES" -> Value.Kbytes
    | Kw "BOOL" -> Value.Kbool
    | t -> fail "expected a column type, got %s" (Fmt.str "%a" pp_token t)
  in
  let col_protection =
    if accept_kw st "CLEAR" then Secdb_db.Schema.Clear
    else begin
      ignore (accept_kw st "ENCRYPTED");
      Secdb_db.Schema.Encrypted
    end
  in
  { Ast.col_name; col_type; col_protection }

let statement st =
  match peek st with
  | Kw "SELECT" -> Ast.Select (select st)
  | Kw "EXPLAIN" ->
      advance st;
      Ast.Explain (select st)
  | Kw "INSERT" ->
      advance st;
      expect_kw st "INTO";
      let table = expect_ident st "a table name" in
      expect_kw st "VALUES";
      expect_sym st "(";
      let rec values acc =
        let v = literal st in
        if accept_sym st "," then values (v :: acc) else List.rev (v :: acc)
      in
      let vs = values [] in
      expect_sym st ")";
      Ast.Insert { table; values = vs }
  | Kw "UPDATE" ->
      advance st;
      let table = expect_ident st "a table name" in
      expect_kw st "SET";
      let col = expect_ident st "a column name" in
      expect_sym st "=";
      let value = literal st in
      let where = if accept_kw st "WHERE" then Some (expr st) else None in
      Ast.Update { table; col; value; where }
  | Kw "DELETE" ->
      advance st;
      expect_kw st "FROM";
      let table = expect_ident st "a table name" in
      let where = if accept_kw st "WHERE" then Some (expr st) else None in
      Ast.Delete { table; where }
  | Kw "CREATE" -> (
      advance st;
      match next st with
      | Kw "TABLE" ->
          let name = expect_ident st "a table name" in
          expect_sym st "(";
          let rec defs acc =
            let d = column_def st in
            if accept_sym st "," then defs (d :: acc) else List.rev (d :: acc)
          in
          let cols = defs [] in
          expect_sym st ")";
          Ast.Create_table { name; cols }
      | Kw "INDEX" ->
          expect_kw st "ON";
          let table = expect_ident st "a table name" in
          expect_sym st "(";
          let col = expect_ident st "a column name" in
          expect_sym st ")";
          Ast.Create_index { table; col }
      | Kw "RANGE" ->
          expect_kw st "INDEX";
          expect_kw st "ON";
          let table = expect_ident st "a table name" in
          expect_sym st "(";
          let col = expect_ident st "a column name" in
          expect_sym st ")";
          let buckets =
            if accept_kw st "BUCKETS" then
              match next st with
              | Int i when i >= 1L && i <= 4096L -> Some (Int64.to_int i)
              | t -> fail "expected a bucket count in 1..4096, got %s" (Fmt.str "%a" pp_token t)
            else None
          in
          Ast.Create_range_index { table; col; buckets }
      | t -> fail "expected TABLE, INDEX or RANGE INDEX, got %s" (Fmt.str "%a" pp_token t))
  | t -> fail "expected a statement, got %s" (Fmt.str "%a" pp_token t)

let finish st v =
  ignore (accept_sym st ";");
  match peek st with
  | Eof -> Ok v
  | t -> Error (Printf.sprintf "trailing input: %s" (Fmt.str "%a" pp_token t))

let with_tokens input f =
  match Lexer.tokens input with
  | Error e -> Error e
  | Ok toks -> (
      let st = { toks } in
      match f st with v -> finish st v | exception Syntax e -> Error e)

let parse input = with_tokens input statement
let parse_expr input = with_tokens input expr

let parse_many input =
  match Lexer.tokens input with
  | Error e -> Error e
  | Ok toks -> (
      let st = { toks } in
      let rec loop acc =
        if accept_sym st ";" then loop acc
        else
          match peek st with
          | Eof -> Ok (List.rev acc)
          | _ -> (
              match statement st with
              | stmt -> (
                  match peek st with
                  | Eof -> Ok (List.rev (stmt :: acc))
                  | Sym ";" ->
                      advance st;
                      loop (stmt :: acc)
                  | t ->
                      Error
                        (Printf.sprintf "expected ';' between statements, got %s"
                           (Fmt.str "%a" pp_token t)))
              | exception Syntax e -> Error e)
      in
      loop [])

type token =
  | Ident of string
  | Int of int64
  | Str of string
  | Blob of string
  | Kw of string
  | Sym of string
  | Eof

let pp_token ppf = function
  | Ident s -> Fmt.pf ppf "identifier %s" s
  | Int i -> Fmt.pf ppf "integer %Ld" i
  | Str s -> Fmt.pf ppf "string %S" s
  | Blob _ -> Fmt.string ppf "blob literal"
  | Kw k -> Fmt.string ppf k
  | Sym s -> Fmt.pf ppf "'%s'" s
  | Eof -> Fmt.string ppf "end of input"

let keywords =
  [
    "SELECT"; "FROM"; "WHERE"; "AND"; "OR"; "NOT"; "BETWEEN"; "INSERT"; "INTO"; "VALUES";
    "UPDATE"; "SET"; "DELETE"; "CREATE"; "TABLE"; "INDEX"; "ON"; "LIMIT"; "ORDER"; "BY";
    "ASC"; "DESC"; "TRUE"; "FALSE"; "NULL"; "INT"; "TEXT"; "BYTES"; "BOOL"; "ENCRYPTED";
    "CLEAR"; "EXPLAIN"; "COUNT"; "SUM"; "MIN"; "MAX"; "AVG"; "GROUP"; "RANGE"; "BUCKETS";
    "JOIN";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokens input =
  let n = String.length input in
  let rec lex i acc =
    if i >= n then Ok (List.rev (Eof :: acc))
    else
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' -> lex (i + 1) acc
      | '-' when i + 1 < n && input.[i + 1] = '-' ->
          (* -- comment to end of line *)
          let rec skip j = if j < n && input.[j] <> '\n' then skip (j + 1) else j in
          lex (skip i) acc
      | '(' | ')' | ',' | '*' | ';' -> lex (i + 1) (Sym (String.make 1 input.[i]) :: acc)
      | '=' -> lex (i + 1) (Sym "=" :: acc)
      | '!' when i + 1 < n && input.[i + 1] = '=' -> lex (i + 2) (Sym "!=" :: acc)
      | '<' when i + 1 < n && input.[i + 1] = '>' -> lex (i + 2) (Sym "!=" :: acc)
      | '<' when i + 1 < n && input.[i + 1] = '=' -> lex (i + 2) (Sym "<=" :: acc)
      | '<' -> lex (i + 1) (Sym "<" :: acc)
      | '>' when i + 1 < n && input.[i + 1] = '=' -> lex (i + 2) (Sym ">=" :: acc)
      | '>' -> lex (i + 1) (Sym ">" :: acc)
      | '\'' -> lex_string (i + 1) (Buffer.create 16) acc
      | ('x' | 'X') when i + 1 < n && input.[i + 1] = '\'' -> lex_blob (i + 2) i acc
      | c when is_digit c || (c = '-' && i + 1 < n && is_digit input.[i + 1]) ->
          let j = ref (i + 1) in
          while !j < n && is_digit input.[!j] do
            incr j
          done;
          (match Int64.of_string_opt (String.sub input i (!j - i)) with
          | Some v -> lex !j (Int v :: acc)
          | None -> Error (Printf.sprintf "invalid integer at offset %d" i))
      | c when is_ident_start c ->
          let j = ref (i + 1) in
          while !j < n && is_ident_char input.[!j] do
            incr j
          done;
          let word = String.sub input i (!j - i) in
          let upper = String.uppercase_ascii word in
          if List.mem upper keywords then lex !j (Kw upper :: acc)
          else if !j + 1 < n && input.[!j] = '.' && is_ident_start input.[!j + 1] then begin
            (* one qualification level: [table.column] is a single identifier *)
            let k = ref (!j + 2) in
            while !k < n && is_ident_char input.[!k] do
              incr k
            done;
            lex !k (Ident (String.lowercase_ascii (String.sub input i (!k - i))) :: acc)
          end
          else lex !j (Ident (String.lowercase_ascii word) :: acc)
      | c -> Error (Printf.sprintf "unexpected character %C at offset %d" c i)
  and lex_string i buf acc =
    if i >= n then Error "unterminated string literal"
    else if input.[i] = '\'' then
      if i + 1 < n && input.[i + 1] = '\'' then begin
        Buffer.add_char buf '\'';
        lex_string (i + 2) buf acc
      end
      else lex (i + 1) (Str (Buffer.contents buf) :: acc)
    else begin
      Buffer.add_char buf input.[i];
      lex_string (i + 1) buf acc
    end
  and lex_blob i start acc =
    let j = ref i in
    while !j < n && input.[!j] <> '\'' do
      incr j
    done;
    if !j >= n then Error "unterminated blob literal"
    else
      match Secdb_util.Xbytes.of_hex (String.sub input i (!j - i)) with
      | blob -> lex (!j + 1) (Blob blob :: acc)
      | exception Invalid_argument _ ->
          Error (Printf.sprintf "invalid blob literal at offset %d" start)
  in
  lex 0 []

(** Planner and executor: SQL over the encrypted database.

    The planner inspects the WHERE clause's top-level conjuncts for
    sargable constraints (equality or range on a single column) on columns
    that have an encrypted index; the first match becomes an index scan
    through {!Secdb_query.Walker} and the full predicate is re-applied as a
    residual filter.  Everything else decrypts and scans.

    [EXPLAIN SELECT …] returns the chosen plan as text, which the tests pin
    down (queries must not silently degrade to scans). *)

type outcome =
  | Rows of { columns : string list; rows : Secdb_db.Value.t list list }
  | Affected of int  (** rows inserted / updated / deleted *)
  | Created  (** table or index *)
  | Plan of string  (** EXPLAIN output *)

type plan =
  | Full_scan
  | Index_scan of {
      col : string;
      lo : Secdb_db.Value.t option;
      hi : Secdb_db.Value.t option;
      estimate : float;
          (** estimated selectivity from the column's histogram
              ({!Secdb.Encdb.index_selectivity}); 1.0 = no information.
              When several indexed columns are constrained the planner
              picks the smallest estimate. *)
    }
  | Range_scan of {
      col : string;
      lo : Secdb_db.Value.t option;
      hi : Secdb_db.Value.t option;
      buckets : int;
      estimate : float;
    }
      (** query through a bucketized {!Secdb_index.Range_tree} — chosen
          only when a constrained column has a range index but no exact
          index (the exact index answers with fewer false positives).
          Candidates come back in ascending row order, a full scan's
          visible order. *)

val plan_of_select : Secdb.Encdb.t -> Ast.select -> plan
(** Exposed for tests. *)

val pp_plan : Format.formatter -> plan -> unit
(** The text EXPLAIN prints. *)

val exec_stmt :
  Secdb.Encdb.t -> ?mode:Secdb_query.Walker.mode -> Ast.stmt -> (outcome, string) result

val exec_snapshot : Snapshot.t -> Ast.stmt -> (outcome, string) result option
(** Answer a point lookup — [SELECT … WHERE col = literal] — or a range
    select — [SELECT … WHERE col BETWEEN lit AND lit] — from an immutable
    {!Snapshot.t} instead of the live database: the sharded server's
    lock-free read path.  The candidate set and the shared
    filter/order/limit/projection tail reproduce {!exec_stmt}'s result
    byte for byte on uncorrupted data.  [None] when the statement is not
    of those shapes (or the snapshot has never seen the table): the caller
    must fall back to the locked executor. *)

val exec :
  Secdb.Encdb.t -> ?mode:Secdb_query.Walker.mode -> string -> (outcome, string) result
(** Parse and execute one statement.  [mode] selects the index walker's
    integrity behaviour (default [Corrected]). *)

val exec_script :
  Secdb.Encdb.t ->
  ?mode:Secdb_query.Walker.mode ->
  string ->
  ((Ast.stmt * outcome) list, string) result
(** Execute a [;]-separated script, stopping at the first error. *)

val pp_result : Format.formatter -> outcome -> unit
(** Render rows as an aligned table, mutations as a count. *)

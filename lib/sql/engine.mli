(** Planner and executor: SQL over the encrypted database.

    The cost-model planner ({!Planner}) enumerates every access path the
    database can serve for a SELECT — full decrypt-scan, exact encrypted
    B⁺-tree probes, bucketized range scans, and for joins both nesting
    orders crossed with both loop strategies — prices each with {!Cost}
    (live {!Secdb_obs.Metrics} inputs when obs is on, static fallbacks
    otherwise) and executes the cheapest.  Every candidate hands its rows
    over in ascending row order and shares one filter / ORDER BY / LIMIT
    / projection tail, so all plans of a query are byte-identical — the
    plan choice costs latency, never correctness (the perf bench's
    [--check] gate asserts exactly that).

    [EXPLAIN SELECT …] returns the chosen plan as text with its estimated
    cost, which the tests pin down (queries must not silently degrade to
    scans). *)

type outcome =
  | Rows of { columns : string list; rows : Secdb_db.Value.t list list }
  | Affected of int  (** rows inserted / updated / deleted *)
  | Created  (** table or index *)
  | Plan of string  (** EXPLAIN output *)

val plan_of_select : Secdb.Encdb.t -> Ast.select -> Plan.t
(** The plan {!exec_stmt} would execute — head of {!candidate_plans}.
    @raise Failure on unknown tables or unresolvable column references
    (callers inside {!exec_stmt} get the structured error). *)

val candidate_plans : Secdb.Encdb.t -> Ast.select -> Plan.t list
(** Every executable plan for the query, cheapest first under
    {!Plan.compare}'s deterministic tie-break; never empty.  Each element
    can be handed to {!exec_plan} and must return the same bytes. *)

val pp_plan : Format.formatter -> Plan.t -> unit
(** The text EXPLAIN prints ({!Plan.pp}). *)

val exec_stmt :
  Secdb.Encdb.t -> ?mode:Secdb_query.Walker.mode -> Ast.stmt -> (outcome, string) result

val exec_plan :
  Secdb.Encdb.t ->
  ?mode:Secdb_query.Walker.mode ->
  Ast.select ->
  Plan.t ->
  (outcome, string) result
(** Execute a SELECT under a caller-chosen plan instead of the planner's
    pick — the bench and the oracle tests force every candidate and
    compare bytes. *)

val exec_snapshot : Snapshot.t -> Ast.stmt -> (outcome, string) result option
(** Answer a point lookup — [SELECT … WHERE col = literal] — or a range
    select — [SELECT … WHERE col BETWEEN lit AND lit] — from an immutable
    {!Snapshot.t} instead of the live database: the sharded server's
    lock-free read path.  The candidate set and the shared
    filter/order/limit/projection tail reproduce {!exec_stmt}'s result
    byte for byte on uncorrupted data.  [None] when the statement is not
    of those shapes — JOINs and qualified [table.column] references
    included — or the snapshot has never seen the table: the caller must
    fall back to the locked executor.  The refusal is structured ([None],
    never an exception). *)

val exec :
  Secdb.Encdb.t -> ?mode:Secdb_query.Walker.mode -> string -> (outcome, string) result
(** Parse and execute one statement.  [mode] selects the index walker's
    integrity behaviour (default [Corrected]). *)

val exec_script :
  Secdb.Encdb.t ->
  ?mode:Secdb_query.Walker.mode ->
  string ->
  ((Ast.stmt * outcome) list, string) result
(** Execute a [;]-separated script, stopping at the first error. *)

val pp_result : Format.formatter -> outcome -> unit
(** Render rows as an aligned table, mutations as a count. *)

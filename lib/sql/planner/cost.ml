module Metrics = Secdb_obs.Metrics
module Obs = Secdb_obs.Obs

(* The unit of cost is one cell decrypt.  Everything else is priced
   relative to that: decoding a B+-tree node touches a handful of sealed
   entries, unsealing one bucket entry is about one cell, and paged
   structures pay extra per node in proportion to how often their caches
   miss.  The constants are deliberately coarse — the model only has to
   order candidate plans correctly, and the [--check] gate guarantees a
   mis-ordering costs latency, never correctness. *)

let c_cell = 1.0
let c_node = 2.0
let c_bucket_entry = 1.0
let c_hash_probe = 0.1

type inputs = {
  pager_hit_rate : float;  (** fraction of pager lookups served from cache, 0..1 *)
  pbt_hit_rate : float;  (** fraction of paged-B⁺-tree node reads served from cache *)
  probe_feedback : float;
      (** observed exact-probe vs bucket-scan latency ratio from the
          [sql.plan_latency] histograms, clamped to [0.5, 2.0]; multiplies
          the exact probe's node costs.  1.0 = neutral / no data. *)
}

let static_inputs = { pager_hit_rate = 1.0; pbt_hit_rate = 1.0; probe_feedback = 1.0 }

let counter_rate hits misses =
  let h = Metrics.value (Metrics.counter hits) and m = Metrics.value (Metrics.counter misses) in
  if h + m = 0 then 1.0 else float_of_int h /. float_of_int (h + m)

let clamp lo hi v = Float.max lo (Float.min hi v)

(* mean observed seconds per query of one plan kind, when enough samples
   accumulated to mean anything *)
let plan_mean kind =
  let v = Metrics.hist_view (Metrics.histogram ~labels:[ ("plan", kind) ] "sql.plan_latency") in
  if v.Metrics.count >= 16 then Some (v.Metrics.sum_seconds /. float_of_int v.Metrics.count)
  else None

let live () =
  if not (Obs.on ()) then static_inputs
  else
    {
      pager_hit_rate = counter_rate "pager.cache_hits" "pager.cache_misses";
      pbt_hit_rate = counter_rate "pbt.cache_hits" "pbt.node_loads";
      probe_feedback =
        (match (plan_mean "index", plan_mean "bucket") with
        | Some i, Some b when b > 0. -> clamp 0.5 2.0 (i /. b)
        | _ -> 1.0);
    }

(* --- access paths --------------------------------------------------------- *)

let depth rows = Float.log2 (float_of_int (max 2 rows))

let seq_scan ~rows ~ncols = float_of_int rows *. float_of_int ncols *. c_cell

let index_probe inputs ~rows ~ncols ~estimate ~paged =
  let node =
    c_node
    *. (if paged then 1.0 +. (3.0 *. (1.0 -. inputs.pbt_hit_rate)) +. (2.0 *. (1.0 -. inputs.pager_hit_rate))
        else 1.0)
    *. inputs.probe_feedback
  in
  (depth rows *. node) +. (estimate *. float_of_int rows *. float_of_int ncols *. c_cell)

let bucket_scan ~rows ~ncols ~estimate ~buckets =
  (* overlap is bucket-granular: even a pinpoint range unseals at least
     one whole bucket's entries before the exact filter *)
  let covered = Float.min 1.0 (estimate +. (1.0 /. float_of_int (max 1 buckets))) in
  (covered *. float_of_int rows *. c_bucket_entry)
  +. (estimate *. float_of_int rows *. float_of_int ncols *. c_cell)

(* --- joins ----------------------------------------------------------------
   [outer_cost] is the outer access path's own cost; [outer_out] the
   estimated rows it emits. *)

let loop_join ~outer_cost ~outer_out ~inner_rows ~inner_ncols =
  outer_cost +. seq_scan ~rows:inner_rows ~ncols:inner_ncols +. (c_hash_probe *. outer_out)

let index_loop_join inputs ~outer_cost ~outer_out ~inner_rows ~inner_ncols ~paged =
  (* per-probe matches: assume mild duplication rather than uniqueness so
     skew does not make the index loop look free *)
  let matches = Float.max 1.0 (0.01 *. float_of_int inner_rows) in
  let probe =
    index_probe inputs ~rows:inner_rows ~ncols:inner_ncols ~estimate:0.0 ~paged
    +. (matches *. float_of_int inner_ncols *. c_cell)
  in
  outer_cost +. (outer_out *. probe)

module Value = Secdb_db.Value

type access =
  | Seq_scan
  | Index_probe of {
      col : string;
      lo : Value.t option;
      hi : Value.t option;
      estimate : float;
    }
  | Bucket_scan of {
      col : string;
      lo : Value.t option;
      hi : Value.t option;
      buckets : int;
      estimate : float;
    }

type strategy = Loop_join | Index_loop_join

type t =
  | Scan of { table : string; access : access; cost : float }
  | Join of {
      outer : string;
      outer_access : access;
      inner : string;
      strategy : strategy;
      outer_col : string;
      inner_col : string;
      swapped : bool;
      cost : float;
    }

let cost = function Scan { cost; _ } | Join { cost; _ } -> cost

let access_estimate = function
  | Seq_scan -> 1.0
  | Index_probe { estimate; _ } | Bucket_scan { estimate; _ } -> estimate

(* deterministic tie-break ranks: an exact index beats a bucketized range
   index beats a full scan at equal cost, and ties between columns fall to
   the lexicographically smaller name — never to hash order or a seed *)
let access_rank = function Index_probe _ -> 0 | Bucket_scan _ -> 1 | Seq_scan -> 2
let access_col = function
  | Index_probe { col; _ } | Bucket_scan { col; _ } -> col
  | Seq_scan -> ""

let strategy_rank = function Index_loop_join -> 0 | Loop_join -> 1

(* total order for candidate lists: cheapest first, then the pinned ranks *)
let rank = function
  | Scan { access; cost; _ } -> (cost, access_rank access, access_col access, 0, 0)
  | Join { outer_access; strategy; swapped; cost; _ } ->
      ( cost,
        3 + access_rank outer_access,
        access_col outer_access,
        strategy_rank strategy,
        if swapped then 1 else 0 )

let compare a b = Stdlib.compare (rank a) (rank b)

(* short labels for bench qualifiers and latency histograms *)
let name = function
  | Scan { access = Seq_scan; _ } -> "seq"
  | Scan { access = Index_probe _; _ } -> "index"
  | Scan { access = Bucket_scan _; _ } -> "bucket"
  | Join { strategy = Loop_join; swapped; _ } ->
      if swapped then "loop-join-rev" else "loop-join"
  | Join { strategy = Index_loop_join; swapped; _ } ->
      if swapped then "index-loop-join-rev" else "index-loop-join"

let pp_bound none ppf v = Fmt.option ~none:(Fmt.any none) Value.pp ppf v

let pp_access ppf = function
  | Seq_scan -> Fmt.string ppf "FULL SCAN (decrypt every row)"
  | Index_probe { col; lo; hi; estimate } ->
      Fmt.pf ppf "INDEX SCAN on %s [%a .. %a] (est. selectivity %.2f) + residual filter" col
        (pp_bound "-inf") lo (pp_bound "+inf") hi estimate
  | Bucket_scan { col; lo; hi; buckets; estimate } ->
      Fmt.pf ppf
        "RANGE BUCKET SCAN on %s [%a .. %a] over %d buckets (est. selectivity %.2f) + \
         residual filter"
        col (pp_bound "-inf") lo (pp_bound "+inf") hi buckets estimate

(* EXPLAIN text.  Costs are printed rounded to whole cost units so the
   cram pins stay stable across float noise; with obs off the inputs are
   the static fallbacks and the output is fully deterministic. *)
let pp ppf = function
  | Scan { table = _; access; cost } -> Fmt.pf ppf "%a; cost ~%.0f" pp_access access cost
  | Join { outer; outer_access; inner; strategy; outer_col; inner_col; swapped = _; cost } -> (
      match strategy with
      | Loop_join ->
          Fmt.pf ppf "NESTED LOOP JOIN: %s via %a -> materialize %s on %s.%s = %s.%s; cost ~%.0f"
            outer pp_access outer_access inner outer outer_col inner inner_col cost
      | Index_loop_join ->
          Fmt.pf ppf "INDEX LOOP JOIN: %s via %a -> probe index %s.%s on %s.%s = %s.%s; cost ~%.0f"
            outer pp_access outer_access inner inner_col outer outer_col inner inner_col cost)

module Value = Secdb_db.Value
module Schema = Secdb_db.Schema
module Etable = Secdb_query.Encrypted_table
module Encdb = Secdb.Encdb

(* --- sargable bounds ------------------------------------------------------ *)

let rec conjuncts = function
  | Ast.And (a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

(* lower/upper bounds a single conjunct puts on a column, if any; strict
   bounds widen to inclusive ones (the residual filter re-tightens) *)
let bounds_of = function
  | Ast.Cmp (op, Ast.Col c, Ast.Lit v) -> (
      match op with
      | Ast.Eq -> Some (c, Some v, Some v)
      | Ast.Le | Ast.Lt -> Some (c, None, Some v)
      | Ast.Ge | Ast.Gt -> Some (c, Some v, None)
      | Ast.Ne -> None)
  | Ast.Cmp (op, Ast.Lit v, Ast.Col c) -> (
      (* mirrored: v op c *)
      match op with
      | Ast.Eq -> Some (c, Some v, Some v)
      | Ast.Ge | Ast.Gt -> Some (c, None, Some v)
      | Ast.Le | Ast.Lt -> Some (c, Some v, None)
      | Ast.Ne -> None)
  | Ast.Between (Ast.Col c, Ast.Lit lo, Ast.Lit hi) -> Some (c, Some lo, Some hi)
  | _ -> None

let merge_bound cmp a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (if cmp (Value.compare a b) then a else b)

(* accumulate bounds per column passing [eligible], preserving the order
   columns first appear in the conjuncts — a deterministic order, never
   hash order *)
let collect_bounds ~eligible where =
  let tbl = (Hashtbl.create 4 : (string, Value.t option * Value.t option) Hashtbl.t) in
  let order = ref [] in
  List.iter
    (fun conj ->
      match bounds_of conj with
      | Some (c, lo, hi) ->
          if eligible c then begin
            let plo, phi = Option.value (Hashtbl.find_opt tbl c) ~default:(None, None) in
            if not (Hashtbl.mem tbl c) then order := c :: !order;
            Hashtbl.replace tbl c
              (merge_bound (fun d -> d > 0) plo lo, merge_bound (fun d -> d < 0) phi hi)
          end
      | None -> ())
    (conjuncts where);
  List.map (fun c -> (c, Hashtbl.find tbl c)) (List.rev !order)

let split_qual c =
  match String.index_opt c '.' with
  | Some i -> Some (String.sub c 0 i, String.sub c (i + 1) (String.length c - i - 1))
  | None -> None

(* --- candidate access paths ----------------------------------------------- *)

(* a paged index answers has_index but hides its in-memory tree *)
let index_is_paged db ~table ~col =
  Encdb.has_index db ~table ~col
  && (match Encdb.index db ~table ~col with _ -> false | exception Not_found -> true)

let table_ncols db table = Schema.ncols (Etable.schema (Encdb.table db table))

(* every access path for one table, with its cost.  [col_of] maps a WHERE
   column reference to this table's base column name ([None] if the
   reference belongs to another table). *)
let access_candidates db inputs ~table ~col_of where =
  let rows = Encdb.live_rows db ~table in
  let ncols = table_ncols db table in
  let seq = (Plan.Seq_scan, Cost.seq_scan ~rows ~ncols) in
  match where with
  | None -> [ seq ]
  | Some w ->
      let eligible has c = match col_of c with Some b -> has ~table ~col:b | None -> false in
      let estimate_of b lo hi =
        Option.value ~default:1.0 (Encdb.index_selectivity db ~table ~col:b ~lo ~hi)
      in
      let exact =
        collect_bounds ~eligible:(eligible (Encdb.has_index db)) w
        |> List.map (fun (c, (lo, hi)) ->
               let b = Option.get (col_of c) in
               let estimate = estimate_of b lo hi in
               let paged = index_is_paged db ~table ~col:b in
               ( Plan.Index_probe { col = b; lo; hi; estimate },
                 Cost.index_probe inputs ~rows ~ncols ~estimate ~paged ))
      in
      let range =
        collect_bounds ~eligible:(eligible (Encdb.has_range_index db)) w
        |> List.map (fun (c, (lo, hi)) ->
               let b = Option.get (col_of c) in
               let estimate = estimate_of b lo hi in
               let buckets =
                 Option.value ~default:1 (Encdb.range_index_nbuckets db ~table ~col:b)
               in
               ( Plan.Bucket_scan { col = b; lo; hi; buckets; estimate },
                 Cost.bucket_scan ~rows ~ncols ~estimate ~buckets ))
      in
      (seq :: exact) @ range

(* --- candidate plans ------------------------------------------------------ *)

(* [s] must already be resolved (column references qualified for joins,
   unqualified for single-table selects); [join] carries the resolved
   (outer table, outer col, inner table, inner col) of the ON clause. *)
let candidates db (s : Ast.select) ~join =
  let inputs = Cost.live () in
  let plans =
    match join with
    | None ->
        access_candidates db inputs ~table:s.Ast.table ~col_of:Option.some s.Ast.where
        |> List.map (fun (access, cost) -> Plan.Scan { table = s.Ast.table; access; cost })
    | Some (t1, c1, t2, c2) ->
        [ (t1, c1, t2, c2, false); (t2, c2, t1, c1, true) ]
        |> List.concat_map (fun (ot, oc, it, ic, swapped) ->
               let col_of c =
                 match split_qual c with Some (t, b) when t = ot -> Some b | _ -> None
               in
               let orows = Encdb.live_rows db ~table:ot in
               let inner_rows = Encdb.live_rows db ~table:it in
               let inner_ncols = table_ncols db it in
               access_candidates db inputs ~table:ot ~col_of s.Ast.where
               |> List.concat_map (fun (access, outer_cost) ->
                      let outer_out = Plan.access_estimate access *. float_of_int orows in
                      let mk strategy cost =
                        Plan.Join
                          {
                            outer = ot;
                            outer_access = access;
                            inner = it;
                            strategy;
                            outer_col = oc;
                            inner_col = ic;
                            swapped;
                            cost;
                          }
                      in
                      let loop =
                        mk Plan.Loop_join
                          (Cost.loop_join ~outer_cost ~outer_out ~inner_rows ~inner_ncols)
                      in
                      if Encdb.has_index db ~table:it ~col:ic then
                        [
                          loop;
                          mk Plan.Index_loop_join
                            (Cost.index_loop_join inputs ~outer_cost ~outer_out ~inner_rows
                               ~inner_ncols
                               ~paged:(index_is_paged db ~table:it ~col:ic));
                        ]
                      else [ loop ]))
  in
  List.sort Plan.compare plans

let choose db s ~join = List.hd (candidates db s ~join)

(** Cost model: price a candidate access path in cell-decrypt units.

    Inputs come from the live {!Secdb_obs.Metrics} registry when the obs
    switch is on — pager and paged-B⁺-tree cache hit rates, and the
    per-plan latency histograms the engine maintains — with static
    fallbacks (everything cached, no feedback) when it is off, so EXPLAIN
    output under cram is deterministic. *)

type inputs = {
  pager_hit_rate : float;  (** fraction of pager lookups served from cache, 0..1 *)
  pbt_hit_rate : float;  (** fraction of paged-B⁺-tree node reads served from cache *)
  probe_feedback : float;
      (** observed exact-probe vs bucket-scan mean-latency ratio
          ([sql.plan_latency{plan=index}] / [{plan=bucket}]), clamped to
          [0.5, 2.0]; 1.0 when either histogram has under 16 samples. *)
}

val static_inputs : inputs
(** All caches hot, no feedback — the obs-off fallback. *)

val live : unit -> inputs
(** Read the registry when {!Secdb_obs.Obs.on}, else {!static_inputs}. *)

val seq_scan : rows:int -> ncols:int -> float

val index_probe : inputs -> rows:int -> ncols:int -> estimate:float -> paged:bool -> float
(** Tree descent (pricier when paged and caches are cold) plus fetching
    the estimated matching rows. *)

val bucket_scan : rows:int -> ncols:int -> estimate:float -> buckets:int -> float
(** Unsealing the covered buckets (at least one — overlap is
    bucket-granular) plus fetching the estimated matching rows. *)

val loop_join :
  outer_cost:float -> outer_out:float -> inner_rows:int -> inner_ncols:int -> float
(** Materialize the inner once, hash-probe per outer row. *)

val index_loop_join :
  inputs ->
  outer_cost:float ->
  outer_out:float ->
  inner_rows:int ->
  inner_ncols:int ->
  paged:bool ->
  float
(** One exact-index descent on the inner table per outer row. *)

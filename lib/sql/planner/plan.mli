(** Typed plan tree: what the planner decides before a SELECT executes.

    A plan describes the access path(s) only — the residual filter, ORDER
    BY sort, LIMIT and projection tail is the same for every plan of a
    query ({!Engine.finish_select}), which is what makes all candidate
    plans byte-identical and lets the cost model choose freely. *)

type access =
  | Seq_scan  (** decrypt every row of the table *)
  | Index_probe of {
      col : string;
      lo : Secdb_db.Value.t option;
      hi : Secdb_db.Value.t option;
      estimate : float;
          (** estimated selectivity from the column's histogram
              ({!Secdb.Encdb.index_selectivity}); 1.0 = no information *)
    }  (** exact encrypted B⁺-tree range walk (memory- or pager-backed) *)
  | Bucket_scan of {
      col : string;
      lo : Secdb_db.Value.t option;
      hi : Secdb_db.Value.t option;
      buckets : int;
      estimate : float;
    }  (** bucketized {!Secdb_index.Range_tree} overlap + exact filter *)

type strategy =
  | Loop_join  (** materialize the inner table once, hash it on the join key *)
  | Index_loop_join  (** probe the inner table's exact index per outer row *)

type t =
  | Scan of { table : string; access : access; cost : float }
  | Join of {
      outer : string;  (** table fetched first, through [outer_access] *)
      outer_access : access;
      inner : string;  (** table materialized or probed per outer row *)
      strategy : strategy;
      outer_col : string;  (** join column in [outer], unqualified *)
      inner_col : string;  (** join column in [inner], unqualified *)
      swapped : bool;  (** [outer] is the syntactic right-hand table *)
      cost : float;
    }

val cost : t -> float
val access_estimate : access -> float

val compare : t -> t -> int
(** Total order for candidate lists: cheapest first; equal costs fall to
    the pinned ranks (exact index < bucket scan < full scan, index-loop <
    materialized loop, declared join order < swapped, then the column
    name) — deterministic and seed-independent by construction. *)

val name : t -> string
(** Short stable label ("seq", "index", "bucket", "loop-join",
    "index-loop-join", plus a "-rev" suffix for swapped joins) — bench
    qualifiers and the per-plan latency histograms. *)

val pp_access : Format.formatter -> access -> unit

val pp : Format.formatter -> t -> unit
(** The text EXPLAIN prints, costs rounded to whole units. *)

(** Cost-model-driven plan selection.

    Enumerates every access path the database can serve for a (resolved)
    SELECT — full decrypt-scan, exact B⁺-tree probes, bucketized range
    scans, and for joins both nesting orders crossed with both loop
    strategies — prices each with {!Cost}, and returns them cheapest
    first under {!Plan.compare}'s deterministic tie-break. *)

val candidates :
  Secdb.Encdb.t ->
  Ast.select ->
  join:(string * string * string * string) option ->
  Plan.t list
(** All executable plans, cheapest first; never empty (a sequential scan
    always qualifies).  [s] must be resolved: column references
    unqualified for single-table selects, [table.column]-qualified for
    joins.  [join] is the resolved ON clause as
    [(left table, left col, right table, right col)]. *)

val choose :
  Secdb.Encdb.t ->
  Ast.select ->
  join:(string * string * string * string) option ->
  Plan.t
(** Head of {!candidates}. *)

(**/**)

val conjuncts : Ast.expr -> Ast.expr list

val collect_bounds :
  eligible:(string -> bool) ->
  Ast.expr ->
  (string * (Secdb_db.Value.t option * Secdb_db.Value.t option)) list

val split_qual : string -> (string * string) option

module Value = Secdb_db.Value
module Schema = Secdb_db.Schema
module Etable = Secdb_query.Encrypted_table
module Walker = Secdb_query.Walker
module Encdb = Secdb.Encdb

type outcome =
  | Rows of { columns : string list; rows : Value.t list list }
  | Affected of int
  | Created
  | Plan of string

type plan =
  | Full_scan
  | Index_scan of { col : string; lo : Value.t option; hi : Value.t option; estimate : float }
  | Range_scan of {
      col : string;
      lo : Value.t option;
      hi : Value.t option;
      buckets : int;
      estimate : float;
    }

let ( let* ) = Result.bind

(* --- predicate evaluation ------------------------------------------------ *)

let eval_operand schema row = function
  | Ast.Col c -> (
      match Schema.col_index schema c with
      | i -> Ok row.(i)
      | exception Not_found -> Error (Printf.sprintf "unknown column %s" c))
  | Ast.Lit v -> Ok v
  | e -> Error (Fmt.str "expected a column or literal, got %a" Ast.pp_expr e)

(* SQL-ish semantics: any comparison involving NULL is false *)
let compare_values op a b =
  if a = Value.Null || b = Value.Null then false
  else
    let c = Value.compare a b in
    match op with
    | Ast.Eq -> c = 0
    | Ast.Ne -> c <> 0
    | Ast.Lt -> c < 0
    | Ast.Le -> c <= 0
    | Ast.Gt -> c > 0
    | Ast.Ge -> c >= 0

let rec eval schema row = function
  | Ast.Cmp (op, a, b) ->
      let* va = eval_operand schema row a in
      let* vb = eval_operand schema row b in
      Ok (compare_values op va vb)
  | Ast.Between (e, lo, hi) ->
      let* v = eval_operand schema row e in
      let* vlo = eval_operand schema row lo in
      let* vhi = eval_operand schema row hi in
      Ok (compare_values Ast.Ge v vlo && compare_values Ast.Le v vhi)
  | Ast.And (a, b) ->
      let* va = eval schema row a in
      if va then eval schema row b else Ok false
  | Ast.Or (a, b) ->
      let* va = eval schema row a in
      if va then Ok true else eval schema row b
  | Ast.Not e ->
      let* v = eval schema row e in
      Ok (not v)
  | (Ast.Col _ | Ast.Lit _) as e ->
      Error (Fmt.str "not a predicate: %a" Ast.pp_expr e)

(* --- planning ------------------------------------------------------------ *)

let rec conjuncts = function
  | Ast.And (a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

(* lower/upper bounds a single conjunct puts on a column, if any; strict
   bounds widen to inclusive ones (the residual filter re-tightens) *)
let bounds_of = function
  | Ast.Cmp (op, Ast.Col c, Ast.Lit v) -> (
      match op with
      | Ast.Eq -> Some (c, Some v, Some v)
      | Ast.Le | Ast.Lt -> Some (c, None, Some v)
      | Ast.Ge | Ast.Gt -> Some (c, Some v, None)
      | Ast.Ne -> None)
  | Ast.Cmp (op, Ast.Lit v, Ast.Col c) -> (
      (* mirrored: v op c *)
      match op with
      | Ast.Eq -> Some (c, Some v, Some v)
      | Ast.Ge | Ast.Gt -> Some (c, None, Some v)
      | Ast.Le | Ast.Lt -> Some (c, Some v, None)
      | Ast.Ne -> None)
  | Ast.Between (Ast.Col c, Ast.Lit lo, Ast.Lit hi) -> Some (c, Some lo, Some hi)
  | _ -> None

let merge_bound cmp a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (if cmp (Value.compare a b) then a else b)

(* accumulate bounds per column passing [eligible], preserving the order
   columns first appear in the conjuncts *)
let collect_bounds ~eligible where =
  let tbl = (Hashtbl.create 4 : (string, Value.t option * Value.t option) Hashtbl.t) in
  let order = ref [] in
  List.iter
    (fun conj ->
      match bounds_of conj with
      | Some (c, lo, hi) ->
          if eligible c then begin
            let plo, phi = Option.value (Hashtbl.find_opt tbl c) ~default:(None, None) in
            if not (Hashtbl.mem tbl c) then order := c :: !order;
            Hashtbl.replace tbl c
              (merge_bound (fun d -> d > 0) plo lo, merge_bound (fun d -> d < 0) phi hi)
          end
      | None -> ())
    (conjuncts where);
  List.map (fun c -> (c, Hashtbl.find tbl c)) (List.rev !order)

(* most selective candidate wins, per the maintained histograms *)
let best_candidate db ~table candidates =
  let scored =
    List.map
      (fun (c, (lo, hi)) ->
        let estimate =
          Option.value ~default:1.0 (Encdb.index_selectivity db ~table ~col:c ~lo ~hi)
        in
        (estimate, c, lo, hi))
      candidates
  in
  List.fold_left
    (fun ((be, _, _, _) as best) ((e, _, _, _) as cand) -> if e < be then cand else best)
    (List.hd scored) (List.tl scored)

let plan_of_select db (s : Ast.select) =
  match s.Ast.where with
  | None -> Full_scan
  | Some where -> (
      let table = s.Ast.table in
      match collect_bounds ~eligible:(fun c -> Encdb.has_index db ~table ~col:c) where with
      | _ :: _ as candidates ->
          let estimate, c, lo, hi = best_candidate db ~table candidates in
          Index_scan { col = c; lo; hi; estimate }
      | [] -> (
          (* no exact index applies; fall back to a bucketized range index
             before surrendering to a full decrypting scan *)
          match
            collect_bounds ~eligible:(fun c -> Encdb.has_range_index db ~table ~col:c) where
          with
          | [] -> Full_scan
          | candidates ->
              let estimate, c, lo, hi = best_candidate db ~table candidates in
              let buckets =
                Option.value ~default:1 (Encdb.range_index_nbuckets db ~table ~col:c)
              in
              Range_scan { col = c; lo; hi; buckets; estimate }))

let pp_plan ppf = function
  | Full_scan -> Fmt.string ppf "FULL SCAN (decrypt every row)"
  | Index_scan { col; lo; hi; estimate } ->
      Fmt.pf ppf "INDEX SCAN on %s [%a .. %a] (est. selectivity %.2f) + residual filter" col
        (Fmt.option ~none:(Fmt.any "-inf") Value.pp)
        lo
        (Fmt.option ~none:(Fmt.any "+inf") Value.pp)
        hi estimate
  | Range_scan { col; lo; hi; buckets; estimate } ->
      Fmt.pf ppf
        "RANGE BUCKET SCAN on %s [%a .. %a] over %d buckets (est. selectivity %.2f) + \
         residual filter"
        col
        (Fmt.option ~none:(Fmt.any "-inf") Value.pp)
        lo
        (Fmt.option ~none:(Fmt.any "+inf") Value.pp)
        hi buckets estimate

(* --- projection and aggregation ------------------------------------------ *)

let is_aggregate = function Ast.Aggregate _ -> true | Ast.Field _ -> false

let col_index_res schema c =
  match Schema.col_index schema c with
  | i -> Ok i
  | exception Not_found -> Error (Printf.sprintf "unknown column %s" c)

(* fold an aggregate over a group of rows *)
let aggregate schema fn col rows =
  let* values =
    match col with
    | None -> Ok None
    | Some c ->
        let* i = col_index_res schema c in
        Ok (Some (List.map (fun (_, vs) -> vs.(i)) rows))
  in
  match (fn, values) with
  | Ast.Count, None -> Ok (Value.Int (Int64.of_int (List.length rows)))
  | Ast.Count, Some vs ->
      Ok (Value.Int (Int64.of_int (List.length (List.filter (fun v -> v <> Value.Null) vs))))
  | (Ast.Sum | Ast.Avg | Ast.Min | Ast.Max), None ->
      Error "aggregate requires a column"
  | (Ast.Min | Ast.Max), Some vs -> (
      let vs = List.filter (fun v -> v <> Value.Null) vs in
      match vs with
      | [] -> Ok Value.Null
      | v :: rest ->
          let pick cmp a b = if cmp (Value.compare a b) then a else b in
          Ok
            (List.fold_left
               (pick (if fn = Ast.Min then fun d -> d < 0 else fun d -> d > 0))
               v rest))
  | (Ast.Sum | Ast.Avg), Some vs -> (
      let ints =
        List.filter_map (function Value.Int i -> Some i | _ -> None)
          (List.filter (fun v -> v <> Value.Null) vs)
      in
      let non_int = List.exists (function Value.Null | Value.Int _ -> false | _ -> true) vs in
      if non_int then Error "SUM/AVG require an INT column"
      else
        match (fn, ints) with
        | _, [] -> Ok Value.Null
        | Ast.Sum, ints -> Ok (Value.Int (List.fold_left Int64.add 0L ints))
        | Ast.Avg, ints ->
            Ok
              (Value.Int
                 (Int64.div (List.fold_left Int64.add 0L ints)
                    (Int64.of_int (List.length ints))))
        | _ -> assert false)

(* final projection: plain fields, or aggregates (optionally grouped) *)
let project schema (s : Ast.select) rows =
  let items =
    match s.Ast.items with
    | None -> List.init (Schema.ncols schema) (fun i -> Ast.Field (Schema.col schema i).Schema.name)
    | Some items -> items
  in
  let columns = List.map Ast.sel_item_name items in
  if List.exists is_aggregate items then begin
    let* groups =
      match s.Ast.group_by with
      | None -> Ok [ (Value.Null, rows) ]
      | Some c ->
          let* i = col_index_res schema c in
          let tbl = Hashtbl.create 16 in
          let order = ref [] in
          List.iter
            (fun (row, vs) ->
              let k = vs.(i) in
              match Hashtbl.find_opt tbl (Value.encode k) with
              | Some l -> l := (row, vs) :: !l
              | None ->
                  Hashtbl.add tbl (Value.encode k) (ref [ (row, vs) ]);
                  order := k :: !order)
            rows;
          Ok
            (List.rev_map
               (fun k -> (k, List.rev !(Hashtbl.find tbl (Value.encode k))))
               !order
            |> List.sort (fun (a, _) (b, _) -> Value.compare a b))
    in
    let* out =
      List.fold_left
        (fun acc (key, group) ->
          let* acc = acc in
          let* cells =
            List.fold_left
              (fun acc item ->
                let* acc = acc in
                match item with
                | Ast.Field c ->
                    if s.Ast.group_by = Some c then Ok (key :: acc)
                    else
                      Error
                        (Printf.sprintf "column %s must appear in GROUP BY or an aggregate" c)
                | Ast.Aggregate (fn, col) ->
                    let* v = aggregate schema fn col group in
                    Ok (v :: acc))
              (Ok []) items
            |> Result.map List.rev
          in
          Ok (cells :: acc))
        (Ok []) groups
      |> Result.map List.rev
    in
    Ok (Rows { columns; rows = out })
  end
  else begin
    let* col_ids =
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          match item with
          | Ast.Field c ->
              let* i = col_index_res schema c in
              Ok (i :: acc)
          | Ast.Aggregate _ -> assert false)
        (Ok []) items
      |> Result.map List.rev
    in
    if s.Ast.group_by <> None then Error "GROUP BY requires aggregates in the select list"
    else
      Ok
        (Rows
           {
             columns;
             rows = List.map (fun (_, values) -> List.map (fun i -> values.(i)) col_ids) rows;
           })
  end

(* --- execution ------------------------------------------------------------ *)

let candidate_rows db ~mode (s : Ast.select) plan =
  match plan with
  | Index_scan { col; lo; hi; estimate = _ } ->
      Encdb.select_range db ~table:s.Ast.table ~col ~mode ?lo ?hi ()
  | Range_scan { col; lo; hi; buckets = _; estimate = _ } ->
      Encdb.select_range_bucketed db ~table:s.Ast.table ~col ?lo ?hi ()
  | Full_scan -> (
      let tbl = Encdb.table db s.Ast.table in
      match Etable.select_result tbl (fun _ -> true) with
      | Ok rows -> Ok rows
      | Error e -> Error e)

(* residual filter, order, limit, projection — shared between the locked
   executor and the snapshot fast path, so both produce identical bytes *)
let finish_select schema (s : Ast.select) candidates =
  (* residual filter: the full predicate, always *)
  let* filtered =
    match s.Ast.where with
    | None -> Ok candidates
    | Some where ->
        List.fold_left
          (fun acc (row, values) ->
            let* acc = acc in
            let* keep = eval schema values where in
            Ok (if keep then (row, values) :: acc else acc))
          (Ok []) candidates
        |> Result.map List.rev
  in
  let* ordered =
    match s.Ast.order_by with
    | None -> Ok filtered
    | Some (c, dir) -> (
        match Schema.col_index schema c with
        | i ->
            let cmp (_, a) (_, b) =
              let d = Value.compare a.(i) b.(i) in
              match dir with Ast.Asc -> d | Ast.Desc -> -d
            in
            Ok (List.stable_sort cmp filtered)
        | exception Not_found -> Error (Printf.sprintf "unknown column %s" c))
  in
  let limited =
    match s.Ast.limit with
    | None -> ordered
    | Some n ->
        let rec take k = function
          | [] -> []
          | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest
        in
        take n ordered
  in
  project schema s limited

let run_select db ~mode (s : Ast.select) =
  let* tbl =
    match Encdb.table db s.Ast.table with
    | t -> Ok t
    | exception Not_found -> Error (Printf.sprintf "unknown table %s" s.Ast.table)
  in
  let schema = Etable.schema tbl in
  let plan = plan_of_select db s in
  let* candidates = candidate_rows db ~mode s plan in
  finish_select schema s candidates

(* --- snapshot fast path ---------------------------------------------------

   A point lookup — SELECT with WHERE exactly [col = literal] — or a
   single-column range — [col BETWEEN lo AND hi] — can be answered from a
   shard's published {!Snapshot.t} without the shard lock.  The candidate
   set is what the planner would produce (the exact index's entries in
   index order when one exists, otherwise an ascending full scan — which
   is also the visible order of a RANGE BUCKET SCAN, so range-indexed
   columns need no snapshot mirror), and the tail is {!finish_select}
   itself, so the bytes match the locked executor's.  Anything else
   returns [None] and falls through. *)

let snapshot_select snap (s : Ast.select) ~col candidates_of =
  match Snapshot.table snap s.Ast.table with
  | None -> None
  | Some ts -> (
      let schema = Snapshot.schema ts in
      match Schema.col_index schema col with
      | exception Not_found ->
          (* unknown-column errors depend on scan order; let the executor
             report them canonically *)
          None
      | ci -> Some (finish_select schema s (candidates_of ts ci)))

let exec_snapshot snap stmt =
  match stmt with
  | Ast.Select s -> (
      match s.Ast.where with
      | Some (Ast.Cmp (Ast.Eq, Ast.Col c, Ast.Lit v))
      | Some (Ast.Cmp (Ast.Eq, Ast.Lit v, Ast.Col c)) ->
          snapshot_select snap s ~col:c (fun ts ci ->
              match Snapshot.index_probe ts ~col:ci v with
              | Some rows -> rows
              | None -> Snapshot.all_rows ts)
      | Some (Ast.Between (Ast.Col c, Ast.Lit lo, Ast.Lit hi)) ->
          snapshot_select snap s ~col:c (fun ts ci ->
              match Snapshot.index_range ts ~col:ci ~lo ~hi with
              | Some rows -> rows
              | None -> Snapshot.all_rows ts)
      | _ -> None)
  | _ -> None

(* rows matching a WHERE clause, for UPDATE/DELETE *)
let matching_rows db ~mode ~table where =
  let s =
    { Ast.items = None; table; where; group_by = None; order_by = None; limit = None }
  in
  let* tbl =
    match Encdb.table db table with
    | t -> Ok t
    | exception Not_found -> Error (Printf.sprintf "unknown table %s" table)
  in
  let schema = Etable.schema tbl in
  let* candidates = candidate_rows db ~mode s (plan_of_select db s) in
  match where with
  | None -> Ok (List.map fst candidates)
  | Some w ->
      List.fold_left
        (fun acc (row, values) ->
          let* acc = acc in
          let* keep = eval schema values w in
          Ok (if keep then row :: acc else acc))
        (Ok []) candidates
      |> Result.map List.rev

let exec_stmt db ?(mode = Walker.Corrected) stmt =
  let protect f =
    try f () with
    | Invalid_argument e | Failure e -> Error e
    | Not_found -> Error "no such table or column"
  in
  match stmt with
  | Ast.Select s -> protect (fun () -> run_select db ~mode s)
  | Ast.Explain s ->
      protect (fun () -> Ok (Plan (Fmt.str "%a" pp_plan (plan_of_select db s))))
  | Ast.Insert { table; values } ->
      protect (fun () ->
          let _row = Encdb.insert db ~table values in
          Ok (Affected 1))
  | Ast.Update { table; col; value; where } ->
      protect (fun () ->
          let* rows = matching_rows db ~mode ~table where in
          let* () =
            List.fold_left
              (fun acc row ->
                let* () = acc in
                Encdb.update db ~table ~row ~col value)
              (Ok ()) rows
          in
          Ok (Affected (List.length rows)))
  | Ast.Delete { table; where } ->
      protect (fun () ->
          let* rows = matching_rows db ~mode ~table where in
          let* () =
            List.fold_left
              (fun acc row ->
                let* () = acc in
                Encdb.delete_row db ~table ~row)
              (Ok ()) rows
          in
          Ok (Affected (List.length rows)))
  | Ast.Create_table { name; cols } ->
      protect (fun () ->
          let columns =
            List.map
              (fun (c : Ast.column_def) ->
                Schema.column ~protection:c.Ast.col_protection c.Ast.col_name c.Ast.col_type)
              cols
          in
          Encdb.create_table db (Schema.v ~table_name:name columns);
          Ok Created)
  | Ast.Create_index { table; col } ->
      protect (fun () ->
          Encdb.create_index db ~table ~col;
          Ok Created)
  | Ast.Create_range_index { table; col; buckets } ->
      protect (fun () ->
          Encdb.create_range_index db ~table ~col ?buckets ();
          Ok Created)

let exec db ?mode input =
  let* stmt = Parser.parse input in
  exec_stmt db ?mode stmt

let exec_script db ?mode input =
  let* stmts = Parser.parse_many input in
  List.fold_left
    (fun acc stmt ->
      let* acc = acc in
      let* outcome = exec_stmt db ?mode stmt in
      Ok ((stmt, outcome) :: acc))
    (Ok []) stmts
  |> Result.map List.rev

let pp_result ppf = function
  | Affected n -> Fmt.pf ppf "%d row(s) affected" n
  | Created -> Fmt.string ppf "created"
  | Plan p -> Fmt.pf ppf "plan: %s" p
  | Rows { columns; rows } ->
      let cell v = Fmt.str "%a" Value.pp v in
      let table = List.map (List.map cell) rows in
      let widths =
        List.mapi
          (fun i c ->
            List.fold_left
              (fun w row -> max w (String.length (List.nth row i)))
              (String.length c) table)
          columns
      in
      let pad s w = s ^ String.make (w - String.length s) ' ' in
      let render_row cells =
        String.concat " | " (List.map2 pad cells widths)
      in
      Fmt.pf ppf "%s@." (render_row columns);
      Fmt.pf ppf "%s@." (String.concat "-+-" (List.map (fun w -> String.make w '-') widths));
      List.iter (fun row -> Fmt.pf ppf "%s@." (render_row row)) table;
      Fmt.pf ppf "(%d row(s))" (List.length rows)

module Value = Secdb_db.Value
module Schema = Secdb_db.Schema
module Etable = Secdb_query.Encrypted_table
module Walker = Secdb_query.Walker
module Encdb = Secdb.Encdb
module Metrics = Secdb_obs.Metrics
module Obs = Secdb_obs.Obs

type outcome =
  | Rows of { columns : string list; rows : Value.t list list }
  | Affected of int
  | Created
  | Plan of string

let ( let* ) = Result.bind

(* --- predicate evaluation ------------------------------------------------ *)

let eval_operand schema row = function
  | Ast.Col c -> (
      match Schema.col_index schema c with
      | i -> Ok row.(i)
      | exception Not_found -> Error (Printf.sprintf "unknown column %s" c))
  | Ast.Lit v -> Ok v
  | e -> Error (Fmt.str "expected a column or literal, got %a" Ast.pp_expr e)

(* SQL-ish semantics: any comparison involving NULL is false *)
let compare_values op a b =
  if a = Value.Null || b = Value.Null then false
  else
    let c = Value.compare a b in
    match op with
    | Ast.Eq -> c = 0
    | Ast.Ne -> c <> 0
    | Ast.Lt -> c < 0
    | Ast.Le -> c <= 0
    | Ast.Gt -> c > 0
    | Ast.Ge -> c >= 0

let rec eval schema row = function
  | Ast.Cmp (op, a, b) ->
      let* va = eval_operand schema row a in
      let* vb = eval_operand schema row b in
      Ok (compare_values op va vb)
  | Ast.Between (e, lo, hi) ->
      let* v = eval_operand schema row e in
      let* vlo = eval_operand schema row lo in
      let* vhi = eval_operand schema row hi in
      Ok (compare_values Ast.Ge v vlo && compare_values Ast.Le v vhi)
  | Ast.And (a, b) ->
      let* va = eval schema row a in
      if va then eval schema row b else Ok false
  | Ast.Or (a, b) ->
      let* va = eval schema row a in
      if va then Ok true else eval schema row b
  | Ast.Not e ->
      let* v = eval schema row e in
      Ok (not v)
  | (Ast.Col _ | Ast.Lit _) as e ->
      Error (Fmt.str "not a predicate: %a" Ast.pp_expr e)

(* --- name resolution ------------------------------------------------------

   The planner and executor work on a [resolved] select: for a single
   table every [table.column] reference is stripped back to the bare
   column; for a join every reference is qualified (unqualified names
   resolve against both schemas, erroring when ambiguous) and the result
   schema is the two tables' columns under their qualified names, left
   table first — declared order, independent of which side the planner
   later makes the outer. *)

type resolved = {
  rs : Ast.select;
  schema : Schema.t;
  join : (string * string * string * string) option;
      (** (left table, left col, right table, right col) of the ON clause,
          base column names *)
}

exception Resolve of string

let schema_of_exn db table =
  match Encdb.table db table with
  | t -> Etable.schema t
  | exception Not_found -> raise (Resolve (Printf.sprintf "unknown table %s" table))

let map_cols f s =
  let rec expr = function
    | Ast.Col c -> Ast.Col (f c)
    | Ast.Lit _ as e -> e
    | Ast.Cmp (op, a, b) -> Ast.Cmp (op, expr a, expr b)
    | Ast.Between (a, lo, hi) -> Ast.Between (expr a, expr lo, expr hi)
    | Ast.And (a, b) -> Ast.And (expr a, expr b)
    | Ast.Or (a, b) -> Ast.Or (expr a, expr b)
    | Ast.Not a -> Ast.Not (expr a)
  in
  let item = function
    | Ast.Field c -> Ast.Field (f c)
    | Ast.Aggregate (fn, col) -> Ast.Aggregate (fn, Option.map f col)
  in
  {
    s with
    Ast.items = Option.map (List.map item) s.Ast.items;
    where = Option.map expr s.Ast.where;
    group_by = Option.map f s.Ast.group_by;
    order_by = Option.map (fun (c, d) -> (f c, d)) s.Ast.order_by;
  }

let resolve_exn db (s : Ast.select) =
  match s.Ast.join with
  | None ->
      let schema = schema_of_exn db s.Ast.table in
      let strip c =
        match Planner.split_qual c with
        | Some (t, b) when t = s.Ast.table -> b
        | Some (t, _) -> raise (Resolve (Printf.sprintf "unknown table %s in reference %s" t c))
        | None -> c
      in
      { rs = map_cols strip s; schema; join = None }
  | Some j ->
      let t1 = s.Ast.table and t2 = j.Ast.jtable in
      if t1 = t2 then raise (Resolve (Printf.sprintf "self-join on %s is not supported" t1));
      let s1 = schema_of_exn db t1 and s2 = schema_of_exn db t2 in
      let has sc b = match Schema.col_index sc b with _ -> true | exception Not_found -> false in
      let qualify c =
        match Planner.split_qual c with
        | Some (t, _) when t <> t1 && t <> t2 ->
            raise (Resolve (Printf.sprintf "unknown table %s in reference %s" t c))
        | Some _ -> c
        | None ->
            let in1 = has s1 c and in2 = has s2 c in
            if in1 && in2 then raise (Resolve (Printf.sprintf "ambiguous column %s" c))
            else if in1 then t1 ^ "." ^ c
            else if in2 then t2 ^ "." ^ c
            else raise (Resolve (Printf.sprintf "unknown column %s" c))
      in
      (* the ON clause's two sides must land on the two distinct tables;
         normalize to (left table, left col, right table, right col) *)
      let on_side c =
        match Planner.split_qual (qualify c) with
        | Some tb -> tb
        | None -> assert false
      in
      let (ta, ca) = on_side j.Ast.on_left and (tb, cb) = on_side j.Ast.on_right in
      if ta = tb then
        raise (Resolve (Printf.sprintf "join ON must relate %s to %s" t1 t2));
      let c1, c2 = if ta = t1 then (ca, cb) else (cb, ca) in
      let qualified t sc =
        List.init (Schema.ncols sc) (fun i ->
            let c = Schema.col sc i in
            { c with Schema.name = t ^ "." ^ c.Schema.name })
      in
      let schema =
        Schema.v ~table_name:(t1 ^ "+" ^ t2) (qualified t1 s1 @ qualified t2 s2)
      in
      { rs = map_cols qualify s; schema; join = Some (t1, c1, t2, c2) }

let resolve db s = try Ok (resolve_exn db s) with Resolve e -> Error e

(* --- planning ------------------------------------------------------------ *)

let plan_of_select db (s : Ast.select) =
  match resolve db s with
  | Ok r -> Planner.choose db r.rs ~join:r.join
  | Error e -> failwith e

let candidate_plans db (s : Ast.select) =
  match resolve db s with
  | Ok r -> Planner.candidates db r.rs ~join:r.join
  | Error e -> failwith e

let pp_plan = Plan.pp

(* --- projection and aggregation ------------------------------------------ *)

let is_aggregate = function Ast.Aggregate _ -> true | Ast.Field _ -> false

let col_index_res schema c =
  match Schema.col_index schema c with
  | i -> Ok i
  | exception Not_found -> Error (Printf.sprintf "unknown column %s" c)

(* fold an aggregate over a group of rows *)
let aggregate schema fn col rows =
  let* values =
    match col with
    | None -> Ok None
    | Some c ->
        let* i = col_index_res schema c in
        Ok (Some (List.map (fun (_, vs) -> vs.(i)) rows))
  in
  match (fn, values) with
  | Ast.Count, None -> Ok (Value.Int (Int64.of_int (List.length rows)))
  | Ast.Count, Some vs ->
      Ok (Value.Int (Int64.of_int (List.length (List.filter (fun v -> v <> Value.Null) vs))))
  | (Ast.Sum | Ast.Avg | Ast.Min | Ast.Max), None ->
      Error "aggregate requires a column"
  | (Ast.Min | Ast.Max), Some vs -> (
      let vs = List.filter (fun v -> v <> Value.Null) vs in
      match vs with
      | [] -> Ok Value.Null
      | v :: rest ->
          let pick cmp a b = if cmp (Value.compare a b) then a else b in
          Ok
            (List.fold_left
               (pick (if fn = Ast.Min then fun d -> d < 0 else fun d -> d > 0))
               v rest))
  | (Ast.Sum | Ast.Avg), Some vs -> (
      let ints =
        List.filter_map (function Value.Int i -> Some i | _ -> None)
          (List.filter (fun v -> v <> Value.Null) vs)
      in
      let non_int = List.exists (function Value.Null | Value.Int _ -> false | _ -> true) vs in
      if non_int then Error "SUM/AVG require an INT column"
      else
        match (fn, ints) with
        | _, [] -> Ok Value.Null
        | Ast.Sum, ints -> Ok (Value.Int (List.fold_left Int64.add 0L ints))
        | Ast.Avg, ints ->
            Ok
              (Value.Int
                 (Int64.div (List.fold_left Int64.add 0L ints)
                    (Int64.of_int (List.length ints))))
        | _ -> assert false)

(* final projection: plain fields, or aggregates (optionally grouped) *)
let project schema (s : Ast.select) rows =
  let items =
    match s.Ast.items with
    | None -> List.init (Schema.ncols schema) (fun i -> Ast.Field (Schema.col schema i).Schema.name)
    | Some items -> items
  in
  let columns = List.map Ast.sel_item_name items in
  if List.exists is_aggregate items then begin
    let* groups =
      match s.Ast.group_by with
      | None -> Ok [ (Value.Null, rows) ]
      | Some c ->
          let* i = col_index_res schema c in
          let tbl = Hashtbl.create 16 in
          let order = ref [] in
          List.iter
            (fun (row, vs) ->
              let k = vs.(i) in
              match Hashtbl.find_opt tbl (Value.encode k) with
              | Some l -> l := (row, vs) :: !l
              | None ->
                  Hashtbl.add tbl (Value.encode k) (ref [ (row, vs) ]);
                  order := k :: !order)
            rows;
          Ok
            (List.rev_map
               (fun k -> (k, List.rev !(Hashtbl.find tbl (Value.encode k))))
               !order
            |> List.sort (fun (a, _) (b, _) -> Value.compare a b))
    in
    let* out =
      List.fold_left
        (fun acc (key, group) ->
          let* acc = acc in
          let* cells =
            List.fold_left
              (fun acc item ->
                let* acc = acc in
                match item with
                | Ast.Field c ->
                    if s.Ast.group_by = Some c then Ok (key :: acc)
                    else
                      Error
                        (Printf.sprintf "column %s must appear in GROUP BY or an aggregate" c)
                | Ast.Aggregate (fn, col) ->
                    let* v = aggregate schema fn col group in
                    Ok (v :: acc))
              (Ok []) items
            |> Result.map List.rev
          in
          Ok (cells :: acc))
        (Ok []) groups
      |> Result.map List.rev
    in
    Ok (Rows { columns; rows = out })
  end
  else begin
    let* col_ids =
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          match item with
          | Ast.Field c ->
              let* i = col_index_res schema c in
              Ok (i :: acc)
          | Ast.Aggregate _ -> assert false)
        (Ok []) items
      |> Result.map List.rev
    in
    if s.Ast.group_by <> None then Error "GROUP BY requires aggregates in the select list"
    else
      Ok
        (Rows
           {
             columns;
             rows = List.map (fun (_, values) -> List.map (fun i -> values.(i)) col_ids) rows;
           })
  end

(* --- execution ------------------------------------------------------------ *)

(* every access path hands its candidates over in ascending row order —
   the canonical order that makes all plans (and the snapshot fast path)
   byte-identical before the shared filter/sort/limit tail *)
let canonical rows = List.sort (fun (a, _) (b, _) -> Stdlib.compare a b) rows

let access_rows db ~mode ~table access =
  let* rows =
    match access with
    | Plan.Index_probe { col; lo; hi; _ } -> Encdb.select_range db ~table ~col ~mode ?lo ?hi ()
    | Plan.Bucket_scan { col; lo; hi; _ } -> Encdb.select_range_bucketed db ~table ~col ?lo ?hi ()
    | Plan.Seq_scan -> Etable.select_result (Encdb.table db table) (fun _ -> true)
  in
  Ok (canonical rows)

(* inner equi-join.  Output rows are keyed (left row, right row) and the
   values are left table's cells then right table's, whatever side the
   plan made the outer; Null join keys match nothing on either side. *)
let join_rows db ~mode ~outer ~outer_access ~inner ~strategy ~outer_col ~inner_col ~swapped =
  let oschema = Etable.schema (Encdb.table db outer) in
  let ischema = Etable.schema (Encdb.table db inner) in
  let* oi = col_index_res oschema outer_col in
  let* ii = col_index_res ischema inner_col in
  let combine (orow, ovs) (irow, ivs) =
    if swapped then ((irow, orow), Array.append ivs ovs)
    else ((orow, irow), Array.append ovs ivs)
  in
  let* outer_rows = access_rows db ~mode ~table:outer outer_access in
  let* pairs =
    match strategy with
    | Plan.Loop_join ->
        (* materialize the inner once, hash it on the join key *)
        let* inner_rows = access_rows db ~mode ~table:inner Plan.Seq_scan in
        let buckets = Hashtbl.create 64 in
        List.iter
          (fun ((_, ivs) as ir) ->
            let k = ivs.(ii) in
            if k <> Value.Null then begin
              match Hashtbl.find_opt buckets (Value.encode k) with
              | Some l -> l := ir :: !l
              | None -> Hashtbl.add buckets (Value.encode k) (ref [ ir ])
            end)
          (List.rev inner_rows);
        Ok
          (List.concat_map
             (fun ((_, ovs) as orow) ->
               let k = ovs.(oi) in
               if k = Value.Null then []
               else
                 match Hashtbl.find_opt buckets (Value.encode k) with
                 | None -> []
                 | Some l ->
                     List.filter_map
                       (fun ((_, ivs) as ir) ->
                         if compare_values Ast.Eq ivs.(ii) k then Some (combine orow ir)
                         else None)
                       !l)
             outer_rows)
    | Plan.Index_loop_join ->
        (* one exact-index probe on the inner table per outer row *)
        List.fold_left
          (fun acc ((_, ovs) as orow) ->
            let* acc = acc in
            let k = ovs.(oi) in
            if k = Value.Null then Ok acc
            else
              let* matches = Encdb.select_eq db ~table:inner ~col:inner_col ~mode k in
              let matches =
                List.filter (fun (_, ivs) -> compare_values Ast.Eq ivs.(ii) k)
                  (canonical matches)
              in
              Ok (List.rev_append (List.rev_map (combine orow) matches) acc))
          (Ok []) outer_rows
        |> Result.map List.rev
  in
  Ok (List.sort (fun (a, _) (b, _) -> Stdlib.compare a b) pairs)

(* residual filter, order, limit, projection — shared between the locked
   executor and the snapshot fast path, so both produce identical bytes *)
let finish_select schema (s : Ast.select) candidates =
  (* residual filter: the full predicate, always *)
  let* filtered =
    match s.Ast.where with
    | None -> Ok candidates
    | Some where ->
        List.fold_left
          (fun acc (row, values) ->
            let* acc = acc in
            let* keep = eval schema values where in
            Ok (if keep then (row, values) :: acc else acc))
          (Ok []) candidates
        |> Result.map List.rev
  in
  let* ordered =
    match s.Ast.order_by with
    | None -> Ok filtered
    | Some (c, dir) -> (
        match Schema.col_index schema c with
        | i ->
            let cmp (_, a) (_, b) =
              let d = Value.compare a.(i) b.(i) in
              match dir with Ast.Asc -> d | Ast.Desc -> -d
            in
            Ok (List.stable_sort cmp filtered)
        | exception Not_found -> Error (Printf.sprintf "unknown column %s" c))
  in
  let limited =
    match s.Ast.limit with
    | None -> ordered
    | Some n ->
        let rec take k = function
          | [] -> []
          | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest
        in
        take n ordered
  in
  project schema s limited

(* per-plan latency histograms feed the cost model's feedback input; only
   touched while obs is on so obs-off processes keep an empty registry *)
let timed plan f =
  if Obs.on () then
    Metrics.time (Metrics.histogram ~labels:[ ("plan", Plan.name plan) ] "sql.plan_latency") f
  else f ()

let exec_resolved db ~mode (r : resolved) plan =
  timed plan (fun () ->
      match (plan, r.join) with
      | Plan.Scan { table; access; _ }, None ->
          let* rows = access_rows db ~mode ~table access in
          finish_select r.schema r.rs rows
      | ( Plan.Join { outer; outer_access; inner; strategy; outer_col; inner_col; swapped; _ },
          Some _ ) ->
          let* rows =
            join_rows db ~mode ~outer ~outer_access ~inner ~strategy ~outer_col ~inner_col
              ~swapped
          in
          finish_select r.schema r.rs rows
      | _ -> Error "plan does not match the query's shape")

let run_select db ~mode (s : Ast.select) =
  let* r = resolve db s in
  let plan = Planner.choose db r.rs ~join:r.join in
  exec_resolved db ~mode r plan

(* execute under a caller-chosen plan (bench and oracle tests force every
   candidate and compare bytes) *)
let exec_plan db ?(mode = Walker.Corrected) (s : Ast.select) plan =
  let* r = resolve db s in
  exec_resolved db ~mode r plan

(* --- snapshot fast path ---------------------------------------------------

   A point lookup — SELECT with WHERE exactly [col = literal] — or a
   single-column range — [col BETWEEN lo AND hi] — can be answered from a
   shard's published {!Snapshot.t} without the shard lock.  The candidate
   set is canonicalized to ascending row order — the same order every
   executor plan now presents — and the tail is {!finish_select} itself,
   so the bytes match the locked executor's.  JOINs, and selects using
   qualified [table.column] references (whose resolution needs the live
   catalog), return [None] and fall through to the locked engine — a
   structured fallback, never an exception. *)

let uses_qualified_names (s : Ast.select) =
  let qual c = String.contains c '.' in
  let rec expr = function
    | Ast.Col c -> qual c
    | Ast.Lit _ -> false
    | Ast.Cmp (_, a, b) | Ast.And (a, b) | Ast.Or (a, b) -> expr a || expr b
    | Ast.Between (a, lo, hi) -> expr a || expr lo || expr hi
    | Ast.Not a -> expr a
  in
  let item = function
    | Ast.Field c -> qual c
    | Ast.Aggregate (_, col) -> Option.fold ~none:false ~some:qual col
  in
  (match s.Ast.items with Some items -> List.exists item items | None -> false)
  || Option.fold ~none:false ~some:expr s.Ast.where
  || Option.fold ~none:false ~some:qual s.Ast.group_by
  || (match s.Ast.order_by with Some (c, _) -> qual c | None -> false)

let snapshot_select snap (s : Ast.select) ~col candidates_of =
  match Snapshot.table snap s.Ast.table with
  | None -> None
  | Some ts -> (
      let schema = Snapshot.schema ts in
      match Schema.col_index schema col with
      | exception Not_found ->
          (* unknown-column errors depend on scan order; let the executor
             report them canonically *)
          None
      | ci -> Some (finish_select schema s (canonical (candidates_of ts ci))))

let exec_snapshot snap stmt =
  match stmt with
  | Ast.Select s when s.Ast.join <> None || uses_qualified_names s -> None
  | Ast.Select s -> (
      match s.Ast.where with
      | Some (Ast.Cmp (Ast.Eq, Ast.Col c, Ast.Lit v))
      | Some (Ast.Cmp (Ast.Eq, Ast.Lit v, Ast.Col c)) ->
          snapshot_select snap s ~col:c (fun ts ci ->
              match Snapshot.index_probe ts ~col:ci v with
              | Some rows -> rows
              | None -> Snapshot.all_rows ts)
      | Some (Ast.Between (Ast.Col c, Ast.Lit lo, Ast.Lit hi)) ->
          snapshot_select snap s ~col:c (fun ts ci ->
              match Snapshot.index_range ts ~col:ci ~lo ~hi with
              | Some rows -> rows
              | None -> Snapshot.all_rows ts)
      | _ -> None)
  | _ -> None

(* rows matching a WHERE clause, for UPDATE/DELETE *)
let matching_rows db ~mode ~table where =
  let s =
    {
      Ast.items = None;
      table;
      join = None;
      where;
      group_by = None;
      order_by = None;
      limit = None;
    }
  in
  let* r = resolve db s in
  let* candidates =
    match Planner.choose db r.rs ~join:None with
    | Plan.Scan { table = t; access; _ } -> access_rows db ~mode ~table:t access
    | Plan.Join _ -> assert false
  in
  match r.rs.Ast.where with
  | None -> Ok (List.map fst candidates)
  | Some w ->
      List.fold_left
        (fun acc (row, values) ->
          let* acc = acc in
          let* keep = eval r.schema values w in
          Ok (if keep then row :: acc else acc))
        (Ok []) candidates
      |> Result.map List.rev

let exec_stmt db ?(mode = Walker.Corrected) stmt =
  let protect f =
    try f () with
    | Invalid_argument e | Failure e -> Error e
    | Not_found -> Error "no such table or column"
  in
  match stmt with
  | Ast.Select s -> protect (fun () -> run_select db ~mode s)
  | Ast.Explain s ->
      protect (fun () -> Ok (Plan (Fmt.str "%a" Plan.pp (plan_of_select db s))))
  | Ast.Insert { table; values } ->
      protect (fun () ->
          let _row = Encdb.insert db ~table values in
          Ok (Affected 1))
  | Ast.Update { table; col; value; where } ->
      protect (fun () ->
          let* rows = matching_rows db ~mode ~table where in
          let* () =
            List.fold_left
              (fun acc row ->
                let* () = acc in
                Encdb.update db ~table ~row ~col value)
              (Ok ()) rows
          in
          Ok (Affected (List.length rows)))
  | Ast.Delete { table; where } ->
      protect (fun () ->
          let* rows = matching_rows db ~mode ~table where in
          let* () =
            List.fold_left
              (fun acc row ->
                let* () = acc in
                Encdb.delete_row db ~table ~row)
              (Ok ()) rows
          in
          Ok (Affected (List.length rows)))
  | Ast.Create_table { name; cols } ->
      protect (fun () ->
          let columns =
            List.map
              (fun (c : Ast.column_def) ->
                Schema.column ~protection:c.Ast.col_protection c.Ast.col_name c.Ast.col_type)
              cols
          in
          Encdb.create_table db (Schema.v ~table_name:name columns);
          Ok Created)
  | Ast.Create_index { table; col } ->
      protect (fun () ->
          Encdb.create_index db ~table ~col;
          Ok Created)
  | Ast.Create_range_index { table; col; buckets } ->
      protect (fun () ->
          Encdb.create_range_index db ~table ~col ?buckets ();
          Ok Created)

let exec db ?mode input =
  let* stmt = Parser.parse input in
  exec_stmt db ?mode stmt

let exec_script db ?mode input =
  let* stmts = Parser.parse_many input in
  List.fold_left
    (fun acc stmt ->
      let* acc = acc in
      let* outcome = exec_stmt db ?mode stmt in
      Ok ((stmt, outcome) :: acc))
    (Ok []) stmts
  |> Result.map List.rev

let pp_result ppf = function
  | Affected n -> Fmt.pf ppf "%d row(s) affected" n
  | Created -> Fmt.string ppf "created"
  | Plan p -> Fmt.pf ppf "plan: %s" p
  | Rows { columns; rows } ->
      let cell v = Fmt.str "%a" Value.pp v in
      let table = List.map (List.map cell) rows in
      let widths =
        List.mapi
          (fun i c ->
            List.fold_left
              (fun w row -> max w (String.length (List.nth row i)))
              (String.length c) table)
          columns
      in
      let pad s w = s ^ String.make (w - String.length s) ' ' in
      let render_row cells =
        String.concat " | " (List.map2 pad cells widths)
      in
      Fmt.pf ppf "%s@." (render_row columns);
      Fmt.pf ppf "%s@." (String.concat "-+-" (List.map (fun w -> String.make w '-') widths));
      List.iter (fun row -> Fmt.pf ppf "%s@." (render_row row)) table;
      Fmt.pf ppf "(%d row(s))" (List.length rows)

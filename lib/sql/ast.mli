(** Abstract syntax of the SQL subset. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type expr =
  | Col of string
  | Lit of Secdb_db.Value.t
  | Cmp of cmp * expr * expr
  | Between of expr * expr * expr  (** e BETWEEN lo AND hi, inclusive *)
  | And of expr * expr
  | Or of expr * expr
  | Not of expr

type order = Asc | Desc

type agg_fn = Count | Sum | Min | Max | Avg

type sel_item =
  | Field of string
  | Aggregate of agg_fn * string option
      (** [Aggregate (Count, None)] is [COUNT] over whole rows (star form);
          every other aggregate names a column *)

type join = {
  jtable : string;  (** right-hand table *)
  on_left : string;  (** one side of the ON equality, possibly qualified *)
  on_right : string;  (** the other side *)
}
(** [JOIN jtable ON on_left = on_right] — inner equi-join only. *)

type select = {
  items : sel_item list option;  (** [None] = [*] *)
  table : string;
  join : join option;
  where : expr option;
  group_by : string option;
  order_by : (string * order) option;
  limit : int option;
}

type column_def = {
  col_name : string;
  col_type : Secdb_db.Value.kind;
  col_protection : Secdb_db.Schema.protection;
}

type stmt =
  | Select of select
  | Explain of select
  | Insert of { table : string; values : Secdb_db.Value.t list }
  | Update of { table : string; col : string; value : Secdb_db.Value.t; where : expr option }
  | Delete of { table : string; where : expr option }
  | Create_table of { name : string; cols : column_def list }
  | Create_index of { table : string; col : string }
  | Create_range_index of { table : string; col : string; buckets : int option }
      (** [CREATE RANGE INDEX ON t (c) \[BUCKETS n\]] — the bucketized
          structure of {!Secdb_index.Range_tree}; [buckets = None] takes
          the engine's default *)

val sel_item_name : sel_item -> string
(** Output column header for a select item, e.g. ["count"] of star. *)

val stmt_table : stmt -> string
(** The table a statement primarily touches (the FROM table for selects) —
    what a sharded server routes on.  JOINed statements touch a second
    table; see {!stmt_tables}. *)

val select_tables : select -> string list
(** FROM table plus the JOINed table, if any. *)

val stmt_tables : stmt -> string list
(** Every table a statement touches — a sharded server must check they
    all live on one shard before routing. *)

val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit

val to_sql : stmt -> string
(** Serialise back to concrete syntax that {!Parser.parse} accepts — the
    tests check [parse (to_sql s) = Ok s] on randomly generated statements.
    @raise Invalid_argument for values with no SQL literal form (none
    currently). *)

val sql_literal : Secdb_db.Value.t -> string
(** SQL literal syntax for a value: [42], ['it''s'], [x'00ff'], [TRUE],
    [NULL]. *)

(** Immutable read snapshot of one shard's logical database state.

    The sharded server keeps one of these per shard in an [Atomic.t]: the
    shard's executor folds every {!Secdb.Encdb.change} into a fresh
    snapshot after each mutation, and reader threads serve point lookups
    from the last published snapshot without ever taking the shard lock —
    a reader can observe a slightly stale (but internally consistent)
    state, never a torn one.

    The snapshot mirrors the engine's visible ordering exactly: full scans
    enumerate live rows in ascending row order (like
    {!Secdb_query.Encrypted_table.select}), and an indexed column's
    duplicate lists keep index order — ascending rows after a rebuild,
    append-to-the-right on insert and update — so a query answered here is
    byte-identical to the same query run through the executor. *)

type table_snap
type t

val empty : t

val apply : t -> Secdb.Encdb.change -> t
(** Fold one applied mutation.  Changes for tables the snapshot does not
    know (never primed, e.g. after a failed {!of_db}) are dropped — such
    tables simply stay off the fast path. *)

val of_db : Secdb.Encdb.t -> t
(** Prime a snapshot from live state: decrypt every table once.  A table
    whose scan fails integrity is left out (its queries fall through to
    the locked executor, which reports the canonical error). *)

val table : t -> string -> table_snap option
val schema : table_snap -> Secdb_db.Schema.t

val all_rows : table_snap -> (int * Secdb_db.Value.t array) list
(** Live rows, ascending row order — the full-scan candidate set. *)

val index_probe :
  table_snap -> col:int -> Secdb_db.Value.t -> (int * Secdb_db.Value.t array) list option
(** [None] when the column has no index (caller falls back to
    {!all_rows}); otherwise the rows equal to the probe, in index order. *)

val index_range :
  table_snap ->
  col:int ->
  lo:Secdb_db.Value.t ->
  hi:Secdb_db.Value.t ->
  (int * Secdb_db.Value.t array) list option
(** [None] when the column has no exact index; otherwise the rows with
    [lo <= v <= hi] in the order an INDEX SCAN yields them — value
    ascending, duplicates in index order.  (Bucketized range indexes need
    no snapshot mirror: their candidate order is {!all_rows}'s.) *)

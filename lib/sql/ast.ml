module Value = Secdb_db.Value

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type expr =
  | Col of string
  | Lit of Value.t
  | Cmp of cmp * expr * expr
  | Between of expr * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr

type order = Asc | Desc

type agg_fn = Count | Sum | Min | Max | Avg

type sel_item = Field of string | Aggregate of agg_fn * string option

(* inner equi-join: [FROM t JOIN jtable ON on_left = on_right].  The ON
   columns may be qualified ([t.c]) or bare; the engine resolves them. *)
type join = { jtable : string; on_left : string; on_right : string }

type select = {
  items : sel_item list option;
  table : string;
  join : join option;
  where : expr option;
  group_by : string option;
  order_by : (string * order) option;
  limit : int option;
}

type column_def = {
  col_name : string;
  col_type : Value.kind;
  col_protection : Secdb_db.Schema.protection;
}

type stmt =
  | Select of select
  | Explain of select
  | Insert of { table : string; values : Value.t list }
  | Update of { table : string; col : string; value : Value.t; where : expr option }
  | Delete of { table : string; where : expr option }
  | Create_table of { name : string; cols : column_def list }
  | Create_index of { table : string; col : string }
  | Create_range_index of { table : string; col : string; buckets : int option }

let cmp_name = function
  | Eq -> "=" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let rec pp_expr ppf = function
  | Col c -> Fmt.string ppf c
  | Lit v -> Value.pp ppf v
  | Cmp (op, a, b) -> Fmt.pf ppf "%a %s %a" pp_expr a (cmp_name op) pp_expr b
  | Between (e, lo, hi) ->
      Fmt.pf ppf "%a BETWEEN %a AND %a" pp_expr e pp_expr lo pp_expr hi
  | And (a, b) -> Fmt.pf ppf "(%a AND %a)" pp_expr a pp_expr b
  | Or (a, b) -> Fmt.pf ppf "(%a OR %a)" pp_expr a pp_expr b
  | Not e -> Fmt.pf ppf "NOT (%a)" pp_expr e

let pp_where ppf = function
  | None -> ()
  | Some e -> Fmt.pf ppf " WHERE %a" pp_expr e

let agg_name = function
  | Count -> "COUNT" | Sum -> "SUM" | Min -> "MIN" | Max -> "MAX" | Avg -> "AVG"

let sel_item_name = function
  | Field c -> c
  | Aggregate (f, col) ->
      Printf.sprintf "%s(%s)" (String.lowercase_ascii (agg_name f))
        (Option.value col ~default:"*")

let stmt_table = function
  | Select s | Explain s -> s.table
  | Insert { table; _ } | Update { table; _ } | Delete { table; _ } -> table
  | Create_table { name; _ } -> name
  | Create_index { table; _ } | Create_range_index { table; _ } -> table

let select_tables s =
  s.table :: (match s.join with Some j -> [ j.jtable ] | None -> [])

(* every table a statement touches — what a sharded server routes on *)
let stmt_tables = function
  | Select s | Explain s -> select_tables s
  | stmt -> [ stmt_table stmt ]

let pp_select ppf s =
  Fmt.pf ppf "SELECT %s FROM %s"
    (match s.items with
    | None -> "*"
    | Some items -> String.concat ", " (List.map sel_item_name items))
    s.table;
  (match s.join with
  | Some j -> Fmt.pf ppf " JOIN %s ON %s = %s" j.jtable j.on_left j.on_right
  | None -> ());
  pp_where ppf s.where;
  (match s.group_by with Some c -> Fmt.pf ppf " GROUP BY %s" c | None -> ());
  (match s.order_by with
  | Some (c, Asc) -> Fmt.pf ppf " ORDER BY %s" c
  | Some (c, Desc) -> Fmt.pf ppf " ORDER BY %s DESC" c
  | None -> ());
  match s.limit with Some n -> Fmt.pf ppf " LIMIT %d" n | None -> ()

let pp_stmt ppf = function
  | Select s -> pp_select ppf s
  | Explain s -> Fmt.pf ppf "EXPLAIN %a" pp_select s
  | Insert { table; values } ->
      Fmt.pf ppf "INSERT INTO %s VALUES (%a)" table (Fmt.list ~sep:Fmt.comma Value.pp) values
  | Update { table; col; value; where } ->
      Fmt.pf ppf "UPDATE %s SET %s = %a%a" table col Value.pp value pp_where where
  | Delete { table; where } -> Fmt.pf ppf "DELETE FROM %s%a" table pp_where where
  | Create_table { name; cols } ->
      Fmt.pf ppf "CREATE TABLE %s (%a)" name
        (Fmt.list ~sep:Fmt.comma (fun ppf c ->
             Fmt.pf ppf "%s %s%s" c.col_name
               (String.uppercase_ascii (Value.kind_name c.col_type))
               (match c.col_protection with
               | Secdb_db.Schema.Clear -> " CLEAR"
               | Secdb_db.Schema.Encrypted -> "")))
        cols
  | Create_index { table; col } -> Fmt.pf ppf "CREATE INDEX ON %s (%s)" table col
  | Create_range_index { table; col; buckets } ->
      Fmt.pf ppf "CREATE RANGE INDEX ON %s (%s)%a" table col
        (Fmt.option (fun ppf n -> Fmt.pf ppf " BUCKETS %d" n))
        buckets

let sql_literal = function
  | Value.Null -> "NULL"
  | Value.Bool true -> "TRUE"
  | Value.Bool false -> "FALSE"
  | Value.Int i -> Int64.to_string i
  | Value.Text s ->
      let b = Buffer.create (String.length s + 2) in
      Buffer.add_char b '\'';
      String.iter
        (fun c ->
          if c = '\'' then Buffer.add_string b "''" else Buffer.add_char b c)
        s;
      Buffer.add_char b '\'';
      Buffer.contents b
  | Value.Bytes s -> "x'" ^ Secdb_util.Xbytes.to_hex s ^ "'"

let rec expr_to_sql = function
  | Col c -> c
  | Lit v -> sql_literal v
  | Cmp (op, a, b) ->
      Printf.sprintf "%s %s %s" (expr_to_sql a) (cmp_name op) (expr_to_sql b)
  | Between (e, lo, hi) ->
      Printf.sprintf "%s BETWEEN %s AND %s" (expr_to_sql e) (expr_to_sql lo) (expr_to_sql hi)
  | And (a, b) -> Printf.sprintf "(%s AND %s)" (expr_to_sql a) (expr_to_sql b)
  | Or (a, b) -> Printf.sprintf "(%s OR %s)" (expr_to_sql a) (expr_to_sql b)
  | Not e -> Printf.sprintf "NOT (%s)" (expr_to_sql e)

let select_to_sql s =
  let b = Buffer.create 64 in
  Buffer.add_string b "SELECT ";
  Buffer.add_string b
    (match s.items with
    | None -> "*"
    | Some items -> String.concat ", " (List.map sel_item_name items));
  Buffer.add_string b (" FROM " ^ s.table);
  (match s.join with
  | Some j ->
      Buffer.add_string b
        (Printf.sprintf " JOIN %s ON %s = %s" j.jtable j.on_left j.on_right)
  | None -> ());
  (match s.where with
  | Some e -> Buffer.add_string b (" WHERE " ^ expr_to_sql e)
  | None -> ());
  (match s.group_by with
  | Some c -> Buffer.add_string b (" GROUP BY " ^ c)
  | None -> ());
  (match s.order_by with
  | Some (c, Asc) -> Buffer.add_string b (" ORDER BY " ^ c ^ " ASC")
  | Some (c, Desc) -> Buffer.add_string b (" ORDER BY " ^ c ^ " DESC")
  | None -> ());
  (match s.limit with
  | Some n -> Buffer.add_string b (" LIMIT " ^ string_of_int n)
  | None -> ());
  Buffer.contents b

let to_sql = function
  | Select s -> select_to_sql s
  | Explain s -> "EXPLAIN " ^ select_to_sql s
  | Insert { table; values } ->
      Printf.sprintf "INSERT INTO %s VALUES (%s)" table
        (String.concat ", " (List.map sql_literal values))
  | Update { table; col; value; where } ->
      Printf.sprintf "UPDATE %s SET %s = %s%s" table col (sql_literal value)
        (match where with Some e -> " WHERE " ^ expr_to_sql e | None -> "")
  | Delete { table; where } ->
      Printf.sprintf "DELETE FROM %s%s" table
        (match where with Some e -> " WHERE " ^ expr_to_sql e | None -> "")
  | Create_table { name; cols } ->
      Printf.sprintf "CREATE TABLE %s (%s)" name
        (String.concat ", "
           (List.map
              (fun c ->
                Printf.sprintf "%s %s %s" c.col_name
                  (String.uppercase_ascii (Value.kind_name c.col_type))
                  (match c.col_protection with
                  | Secdb_db.Schema.Clear -> "CLEAR"
                  | Secdb_db.Schema.Encrypted -> "ENCRYPTED"))
              cols))
  | Create_index { table; col } -> Printf.sprintf "CREATE INDEX ON %s (%s)" table col
  | Create_range_index { table; col; buckets } ->
      Printf.sprintf "CREATE RANGE INDEX ON %s (%s)%s" table col
        (match buckets with None -> "" | Some n -> Printf.sprintf " BUCKETS %d" n)

module Value = Secdb_db.Value
module Schema = Secdb_db.Schema
module Etable = Secdb_query.Encrypted_table
module Encdb = Secdb.Encdb
module Imap = Map.Make (Int)
module Smap = Map.Make (String)

(* [keys.(c)] is [Some m] when column [c] is indexed: [m] maps an encoded
   value to the rows holding it, in the order the index would return them
   — ascending rows after a rebuild, appended on insert/update.  All maps
   are immutable, so publishing a snapshot is one atomic store and value
   arrays are copied before mutation. *)
type table_snap = {
  schema : Schema.t;
  rows : Value.t array Imap.t;
  keys : int list Smap.t option array;
}

type t = table_snap Smap.t

let empty = Smap.empty
let table t name = Smap.find_opt name t
let schema ts = ts.schema

let all_rows ts = Imap.bindings ts.rows

let index_probe ts ~col v =
  match ts.keys.(col) with
  | None -> None
  | Some m ->
      let rows = Option.value (Smap.find_opt (Value.encode v) m) ~default:[] in
      Some (List.map (fun r -> (r, Imap.find r ts.rows)) rows)

(* the candidate set an INDEX SCAN produces for an inclusive range: value
   ascending, duplicates in index order.  Encoded keys are decoded back to
   values for the comparison — {!Value.encode} is injective, so each
   distinct value is exactly one key. *)
let index_range ts ~col ~lo ~hi =
  match ts.keys.(col) with
  | None -> None
  | Some m ->
      let matching =
        Smap.fold
          (fun k rows acc ->
            match Value.decode k with
            | Error _ -> acc
            | Ok v ->
                if Value.compare lo v <= 0 && Value.compare v hi <= 0 then (v, rows) :: acc
                else acc)
          m []
        |> List.sort (fun (a, _) (b, _) -> Value.compare a b)
      in
      Some
        (List.concat_map
           (fun (_, rows) -> List.map (fun r -> (r, Imap.find r ts.rows)) rows)
           matching)

(* rebuild one column's key lists from the rows, ascending row order —
   exactly the order Encdb.create_index bulk-loads (stable sort over an
   ascending scan keeps duplicates row-ascending) *)
let build_keys rows col =
  Smap.map List.rev
    (Imap.fold
       (fun row vs m ->
         let k = Value.encode vs.(col) in
         Smap.add k (row :: Option.value (Smap.find_opt k m) ~default:[]) m)
       rows Smap.empty)

let drop_key m k row =
  match Smap.find_opt k m with
  | None -> m
  | Some rows -> (
      match List.filter (fun r -> r <> row) rows with
      | [] -> Smap.remove k m
      | rows -> Smap.add k rows m)

let append_key m k row = Smap.add k (Option.value (Smap.find_opt k m) ~default:[] @ [ row ]) m

let with_table t name f =
  match Smap.find_opt name t with None -> t | Some ts -> Smap.add name (f ts) t

let apply t (change : Encdb.change) =
  match change with
  | Encdb.Created_table schema ->
      Smap.add schema.Schema.table_name
        { schema; rows = Imap.empty; keys = Array.make (Schema.ncols schema) None }
        t
  | Encdb.Created_index { table; col } ->
      with_table t table (fun ts ->
          match Schema.col_index ts.schema col with
          | ci ->
              let keys = Array.copy ts.keys in
              keys.(ci) <- Some (build_keys ts.rows ci);
              { ts with keys }
          | exception Not_found -> ts)
  | Encdb.Created_range_index _ ->
      (* the bucketized index's candidate sets come back in ascending row
         order — the same visible order as a full scan — so the snapshot
         needs no extra state to mirror a RANGE BUCKET SCAN: {!all_rows}
         already is that order *)
      t
  | Encdb.Inserted { table; row; values } ->
      with_table t table (fun ts ->
          let vs = Array.of_list values in
          let keys =
            Array.mapi
              (fun ci m ->
                Option.map (fun m -> append_key m (Value.encode vs.(ci)) row) m)
              ts.keys
          in
          { ts with rows = Imap.add row vs ts.rows; keys })
  | Encdb.Updated { table; row; col; value } ->
      with_table t table (fun ts ->
          match (Imap.find_opt row ts.rows, Schema.col_index ts.schema col) with
          | Some old, ci ->
              let vs = Array.copy old in
              vs.(ci) <- value;
              let keys =
                match ts.keys.(ci) with
                | None -> ts.keys
                | Some m ->
                    (* mirror the index update: the entry moves to the
                       rightmost position among its new duplicates *)
                    let m = drop_key m (Value.encode old.(ci)) row in
                    let keys = Array.copy ts.keys in
                    keys.(ci) <- Some (append_key m (Value.encode value) row);
                    keys
              in
              { ts with rows = Imap.add row vs ts.rows; keys }
          | None, _ | (exception Not_found) -> ts)
  | Encdb.Deleted { table; row } ->
      with_table t table (fun ts ->
          match Imap.find_opt row ts.rows with
          | None -> ts
          | Some old ->
              let keys =
                Array.mapi
                  (fun ci m -> Option.map (fun m -> drop_key m (Value.encode old.(ci)) row) m)
                  ts.keys
              in
              { ts with rows = Imap.remove row ts.rows; keys })

let of_db db =
  List.fold_left
    (fun t name ->
      let tbl = Encdb.table db name in
      let schema = Etable.schema tbl in
      match Etable.select_result tbl (fun _ -> true) with
      | Error _ -> t (* unreadable table: leave it to the locked path *)
      | Ok live ->
          let rows =
            List.fold_left (fun m (row, vs) -> Imap.add row vs m) Imap.empty live
          in
          let keys =
            Array.init (Schema.ncols schema) (fun ci ->
                if Encdb.has_index db ~table:name ~col:(Schema.col schema ci).Schema.name
                then Some (build_keys rows ci)
                else None)
          in
          Smap.add name { schema; rows; keys } t)
    empty (Encdb.table_names db)
